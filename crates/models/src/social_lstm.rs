//! Social-LSTM-style backbone (Alahi et al., CVPR 2016), the classic
//! pooling-based predictor the paper's backbone skeleton (Fig. 1)
//! directly describes: LSTM mobility encoder, social pooling interaction,
//! and a plain Gaussian latent for diversity (Eq. 5's `z`).
//!
//! Included as a third plug-in backbone to demonstrate (and test) that
//! AdapTraj's plug-and-play contract extends beyond the two backbones
//! evaluated in the paper.

use crate::backbone::{EncodedScene, InteractionKind, RolloutDecoder, SceneEncoder};
use crate::config::BackboneConfig;
use crate::traits::{Backbone, ForwardCtx, Generation};
use adaptraj_data::trajectory::TrajWindow;
use adaptraj_tensor::{ParamStore, Rng, Tape, Tensor, Var};

/// The Social-LSTM-style backbone.
#[derive(Debug, Clone)]
pub struct SocialLstm {
    cfg: BackboneConfig,
    scene: SceneEncoder,
    rollout: RolloutDecoder,
}

impl SocialLstm {
    pub fn new(store: &mut ParamStore, rng: &mut Rng, cfg: BackboneConfig) -> Self {
        let scene = SceneEncoder::new(store, rng, "slstm", &cfg, InteractionKind::MeanPool);
        // Context: [h | P | z | extra].
        let ctx_dim = cfg.base_ctx_dim() + cfg.z_dim;
        let rollout = RolloutDecoder::new(store, rng, "slstm.roll", &cfg, ctx_dim);
        Self {
            cfg,
            scene,
            rollout,
        }
    }
}

impl Backbone for SocialLstm {
    fn name(&self) -> &'static str {
        "SocialLSTM"
    }

    fn config(&self) -> &BackboneConfig {
        &self.cfg
    }

    fn encode(&self, store: &ParamStore, tape: &mut Tape, w: &TrajWindow) -> EncodedScene {
        self.scene.encode(store, tape, w)
    }

    fn generate(
        &self,
        ctx: &mut ForwardCtx<'_>,
        _w: &TrajWindow,
        enc: &EncodedScene,
        extra: Option<Var>,
    ) -> Generation {
        assert_eq!(
            extra.is_some(),
            self.cfg.extra_dim > 0,
            "extra conditioning must match the configured extra_dim"
        );
        // A plain Gaussian latent in both modes: Social-LSTM has no
        // learned latent space; diversity comes from input noise (Eq. 5).
        let tape = &mut *ctx.tape;
        let z = tape.constant(Tensor::randn(1, self.cfg.z_dim, 0.0, 1.0, ctx.rng));
        let mut parts = vec![enc.h_focal, enc.p_i, z];
        if let Some(e) = extra {
            parts.push(e);
        }
        let cond = tape.concat_cols(&parts);
        let pred = self.rollout.rollout(ctx.store, tape, cond);
        Generation {
            pred,
            aux_loss: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::Predictor;
    use crate::traits::{sample_forward, train_forward};
    use crate::vanilla::Vanilla;
    use crate::TrainerConfig;
    use adaptraj_data::domain::DomainId;
    use adaptraj_data::trajectory::{Point, T_PRED, T_TOTAL};
    use adaptraj_tensor::optim::Adam;
    use adaptraj_tensor::GradBuffer;

    fn toy_window(v: f32) -> TrajWindow {
        let focal: Vec<Point> = (0..T_TOTAL).map(|t| [v * t as f32, 0.0]).collect();
        TrajWindow::from_world(&focal, &[], DomainId::EthUcy)
    }

    #[test]
    fn shapes_and_training_descend() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(0);
        let model = SocialLstm::new(&mut store, &mut rng, BackboneConfig::default());
        let w = toy_window(0.4);
        let mut opt = Adam::new(3e-3);
        let (mut first, mut last) = (0.0, 0.0);
        for it in 0..100 {
            let mut tape = Tape::new();
            let mut ctx = ForwardCtx::train(&store, &mut tape, &mut rng);
            let (pred, loss) = train_forward(&model, &mut ctx, &w, None);
            assert_eq!(tape.value(pred).shape(), (T_PRED, 2));
            let grads = tape.backward(loss);
            let mut buf = GradBuffer::new();
            buf.absorb(&tape, &grads);
            buf.clip_global_norm(5.0);
            opt.step(&mut store, &buf);
            let v = tape.value(loss).item();
            if it == 0 {
                first = v;
            }
            last = v;
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn works_under_vanilla_wrapper() {
        let mut model = Vanilla::new(TrainerConfig::smoke(), |s, r| {
            SocialLstm::new(s, r, BackboneConfig::default())
        });
        assert_eq!(model.name(), "SocialLSTM-vanilla");
        let train: Vec<TrajWindow> = (0..8).map(|i| toy_window(0.2 + i as f32 * 0.02)).collect();
        let report = model.fit(&train);
        assert!(report.final_loss().unwrap().is_finite());
        let mut rng = Rng::seed_from(1);
        assert_eq!(model.predict(&train[0], &mut rng).len(), T_PRED);
    }

    #[test]
    fn sampling_is_stochastic() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(2);
        let model = SocialLstm::new(&mut store, &mut rng, BackboneConfig::default());
        let w = toy_window(0.3);
        let mut t1 = Tape::new();
        let mut c1 = ForwardCtx::sample(&store, &mut t1, &mut rng);
        let a = sample_forward(&model, &mut c1, &w, None);
        let mut t2 = Tape::new();
        let mut c2 = ForwardCtx::sample(&store, &mut t2, &mut rng);
        let b = sample_forward(&model, &mut c2, &w, None);
        assert_ne!(t1.value(a).data(), t2.value(b).data());
    }

    #[test]
    fn plugs_into_adaptraj_extra_contract() {
        // The backbone honors the extra-conditioning contract AdapTraj
        // relies on.
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(3);
        let cfg = BackboneConfig::default().with_extra(6);
        let model = SocialLstm::new(&mut store, &mut rng, cfg);
        let w = toy_window(0.4);
        let mut tape = Tape::new();
        let enc = model.encode(&store, &mut tape, &w);
        let e1 = tape.constant(Tensor::zeros(1, 6));
        let e2 = tape.constant(Tensor::full(1, 6, 2.0));
        let mut ctx = ForwardCtx::sample(&store, &mut tape, &mut rng);
        let g1 = model.generate(&mut ctx, &w, &enc, Some(e1));
        let g2 = model.generate(&mut ctx, &w, &enc, Some(e2));
        assert_ne!(tape.value(g1.pred).data(), tape.value(g2.pred).data());
    }
}
