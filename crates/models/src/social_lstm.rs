//! Social-LSTM-style backbone (Alahi et al., CVPR 2016), the classic
//! pooling-based predictor the paper's backbone skeleton (Fig. 1)
//! directly describes: LSTM mobility encoder, social pooling interaction,
//! and a plain Gaussian latent for diversity (Eq. 5's `z`).
//!
//! Included as a third plug-in backbone to demonstrate (and test) that
//! AdapTraj's plug-and-play contract extends beyond the two backbones
//! evaluated in the paper.

use crate::backbone::{EncodedScene, InteractionKind, RolloutDecoder, SceneEncoder};
use crate::config::BackboneConfig;
use crate::traits::{randn_per_window, Backbone, ForwardCtx, Generation};
use adaptraj_data::WindowBatch;
use adaptraj_tensor::{ParamStore, Rng, Tape, Var};

/// The Social-LSTM-style backbone.
#[derive(Debug, Clone)]
pub struct SocialLstm {
    cfg: BackboneConfig,
    scene: SceneEncoder,
    rollout: RolloutDecoder,
}

impl SocialLstm {
    pub fn new(store: &mut ParamStore, rng: &mut Rng, cfg: BackboneConfig) -> Self {
        let scene = SceneEncoder::new(store, rng, "slstm", &cfg, InteractionKind::MeanPool);
        // Context: [h | P | z | extra].
        let ctx_dim = cfg.base_ctx_dim() + cfg.z_dim;
        let rollout = RolloutDecoder::new(store, rng, "slstm.roll", &cfg, ctx_dim);
        Self {
            cfg,
            scene,
            rollout,
        }
    }
}

impl Backbone for SocialLstm {
    fn name(&self) -> &'static str {
        "SocialLSTM"
    }

    fn config(&self) -> &BackboneConfig {
        &self.cfg
    }

    fn encode(&self, store: &ParamStore, tape: &mut Tape, batch: &WindowBatch<'_>) -> EncodedScene {
        self.scene.encode(store, tape, batch)
    }

    fn generate(
        &self,
        ctx: &mut ForwardCtx<'_>,
        _batch: &WindowBatch<'_>,
        enc: &EncodedScene,
        extra: Option<Var>,
    ) -> Generation {
        assert_eq!(
            extra.is_some(),
            self.cfg.extra_dim > 0,
            "extra conditioning must match the configured extra_dim"
        );
        // A plain Gaussian latent in both modes: Social-LSTM has no
        // learned latent space; diversity comes from input noise (Eq. 5).
        // Row b is drawn from window b's rng stream.
        let z_rows = randn_per_window(ctx.rngs, self.cfg.z_dim, 0.0, 1.0);
        let tape = &mut *ctx.tape;
        let z = tape.constant(z_rows);
        let mut parts = vec![enc.h_focal, enc.p_i, z];
        if let Some(e) = extra {
            parts.push(e);
        }
        let cond = tape.concat_cols(&parts);
        let pred = self.rollout.rollout(ctx.store, tape, cond);
        Generation {
            pred,
            aux_loss: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::Predictor;
    use crate::vanilla::Vanilla;
    use crate::TrainerConfig;
    use adaptraj_data::domain::DomainId;
    use adaptraj_data::trajectory::{Point, TrajWindow, T_PRED, T_TOTAL};
    use adaptraj_tensor::optim::Adam;
    use adaptraj_tensor::{GradBuffer, Tensor};

    fn toy_window(v: f32) -> TrajWindow {
        let focal: Vec<Point> = (0..T_TOTAL).map(|t| [v * t as f32, 0.0]).collect();
        TrajWindow::from_world(&focal, &[], DomainId::EthUcy)
    }

    #[test]
    fn shapes_and_training_descend() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(0);
        let model = SocialLstm::new(&mut store, &mut rng, BackboneConfig::default());
        let w = toy_window(0.4);
        let mut opt = Adam::new(3e-3);
        let (mut first, mut last) = (0.0, 0.0);
        for it in 0..100 {
            let batch = WindowBatch::single(&w, 0);
            let mut tape = Tape::new();
            let mut ctx = ForwardCtx::train(&store, &mut tape, std::slice::from_mut(&mut rng));
            let (pred, loss) = model.train_forward(&mut ctx, &batch, None);
            assert_eq!(tape.value(pred).shape(), (T_PRED, 2));
            let grads = tape.backward(loss);
            let mut buf = GradBuffer::new();
            buf.absorb(&tape, &grads);
            buf.clip_global_norm(5.0);
            opt.step(&mut store, &buf);
            let v = tape.value(loss).item();
            if it == 0 {
                first = v;
            }
            last = v;
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn batched_training_pass_works() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(5);
        let model = SocialLstm::new(&mut store, &mut rng, BackboneConfig::default());
        let ws: Vec<TrajWindow> = (0..4).map(|i| toy_window(0.1 + 0.1 * i as f32)).collect();
        let batch = WindowBatch::new(ws.iter().collect(), vec![0, 1, 2, 3]);
        let mut rngs: Vec<Rng> = (0..4).map(|i| Rng::seed_from(i as u64)).collect();
        let mut tape = Tape::new();
        let mut ctx = ForwardCtx::train(&store, &mut tape, &mut rngs);
        let (pred, loss) = model.train_forward(&mut ctx, &batch, None);
        assert_eq!(tape.value(pred).shape(), (T_PRED * 4, 2));
        assert!(tape.value(loss).item().is_finite());
    }

    #[test]
    fn works_under_vanilla_wrapper() {
        let mut model = Vanilla::new(TrainerConfig::smoke(), |s, r| {
            SocialLstm::new(s, r, BackboneConfig::default())
        });
        assert_eq!(model.name(), "SocialLSTM-vanilla");
        let train: Vec<TrajWindow> = (0..8).map(|i| toy_window(0.2 + i as f32 * 0.02)).collect();
        let report = model.fit(&train);
        assert!(report.final_loss().unwrap().is_finite());
        let mut rng = Rng::seed_from(1);
        assert_eq!(model.predict(&train[0], &mut rng).len(), T_PRED);
    }

    #[test]
    fn sampling_is_stochastic() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(2);
        let model = SocialLstm::new(&mut store, &mut rng, BackboneConfig::default());
        let w = toy_window(0.3);
        let batch = WindowBatch::single(&w, 0);
        let mut t1 = Tape::new();
        let mut c1 = ForwardCtx::sample(&store, &mut t1, std::slice::from_mut(&mut rng));
        let a = model.sample_forward(&mut c1, &batch, None);
        let mut t2 = Tape::new();
        let mut c2 = ForwardCtx::sample(&store, &mut t2, std::slice::from_mut(&mut rng));
        let b = model.sample_forward(&mut c2, &batch, None);
        assert_ne!(t1.value(a).data(), t2.value(b).data());
    }

    #[test]
    fn plugs_into_adaptraj_extra_contract() {
        // The backbone honors the extra-conditioning contract AdapTraj
        // relies on.
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(3);
        let cfg = BackboneConfig::default().with_extra(6);
        let model = SocialLstm::new(&mut store, &mut rng, cfg);
        let w = toy_window(0.4);
        let batch = WindowBatch::single(&w, 0);
        let mut tape = Tape::new();
        let enc = model.encode(&store, &mut tape, &batch);
        let e1 = tape.constant(Tensor::zeros(1, 6));
        let e2 = tape.constant(Tensor::full(1, 6, 2.0));
        let mut ctx = ForwardCtx::sample(&store, &mut tape, std::slice::from_mut(&mut rng));
        let g1 = model.generate(&mut ctx, &batch, &enc, Some(e1));
        let g2 = model.generate(&mut ctx, &batch, &enc, Some(e2));
        assert_ne!(tape.value(g1.pred).data(), tape.value(g2.pred).data());
    }
}
