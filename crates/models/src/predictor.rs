//! The user-facing predictor abstraction and the shared training loop.

use crate::config::TrainerConfig;
use adaptraj_data::batch::shuffled_batches;
use adaptraj_data::domain::DomainId;
use adaptraj_data::trajectory::{Point, TrajWindow};
use adaptraj_tensor::optim::Adam;
use adaptraj_tensor::{GradBuffer, ParamStore, Rng, Tape, Var};

/// Per-epoch mean training losses.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    pub epoch_losses: Vec<f32>,
}

impl TrainReport {
    pub fn final_loss(&self) -> Option<f32> {
        self.epoch_losses.last().copied()
    }
}

/// A trained (or trainable) trajectory predictor: a backbone wrapped in a
/// learning method.
pub trait Predictor {
    /// `"<backbone>-<method>"`, e.g. `"PECNet-Counter"`.
    fn name(&self) -> String;

    /// Trains on pooled source-domain windows. Windows carry their
    /// [`DomainId`]; methods that need per-domain structure (AdapTraj)
    /// group by it, the baselines pool everything (matching the paper's
    /// adaptation of single-source methods).
    fn fit(&mut self, train: &[TrajWindow]) -> TrainReport;

    /// One sampled future for a window.
    fn predict(&self, w: &TrajWindow, rng: &mut Rng) -> Vec<Point>;

    /// `k` independent future samples (for best-of-k evaluation).
    fn predict_k(&self, w: &TrajWindow, k: usize, rng: &mut Rng) -> Vec<Vec<Point>> {
        (0..k).map(|_| self.predict(w, rng)).collect()
    }

    /// The model's parameters (for checkpointing via
    /// [`adaptraj_tensor::serialize`]).
    fn store(&self) -> &ParamStore;

    /// Mutable parameter access (checkpoint loading).
    fn store_mut(&mut self) -> &mut ParamStore;
}

/// Caps training windows per domain at `cfg.max_train_windows`
/// (chronological prefix, so no future leakage) and returns the pooled
/// working set.
pub fn cap_per_domain<'a>(train: &'a [TrajWindow], cfg: &TrainerConfig) -> Vec<&'a TrajWindow> {
    if cfg.max_train_windows == 0 {
        return train.iter().collect();
    }
    let mut taken: Vec<(DomainId, usize)> = Vec::new();
    let mut out = Vec::new();
    for w in train {
        let count = match taken.iter_mut().find(|(d, _)| *d == w.domain) {
            Some((_, c)) => c,
            None => {
                taken.push((w.domain, 0));
                &mut taken.last_mut().expect("just pushed").1
            }
        };
        if *count < cfg.max_train_windows {
            *count += 1;
            out.push(w);
        }
    }
    out
}

/// The shared mini-batch training loop: per window, `per_window` builds a
/// scalar loss on a fresh tape; gradients are averaged over the batch,
/// clipped, and applied with the provided Adam optimizer.
pub fn fit_loop<F>(
    store: &mut ParamStore,
    opt: &mut Adam,
    cfg: &TrainerConfig,
    windows: &[&TrajWindow],
    rng: &mut Rng,
    mut per_window: F,
) -> TrainReport
where
    F: FnMut(&ParamStore, &mut Tape, &TrajWindow, &mut Rng) -> Var,
{
    let mut report = TrainReport::default();
    if windows.is_empty() {
        return report;
    }
    let mut best_loss = f32::INFINITY;
    let mut stale_epochs = 0usize;
    for _epoch in 0..cfg.epochs {
        let mut epoch_loss = 0.0;
        let mut seen = 0usize;
        for batch in shuffled_batches(windows.len(), cfg.batch_size, rng) {
            let mut buf = GradBuffer::new();
            let inv = 1.0 / batch.len() as f32;
            for &i in &batch {
                let mut tape = Tape::new();
                let loss = per_window(store, &mut tape, windows[i], rng);
                let grads = tape.backward(loss);
                buf.absorb_scaled(&tape, &grads, inv);
                epoch_loss += tape.value(loss).item();
                seen += 1;
            }
            if cfg.grad_clip > 0.0 {
                buf.clip_global_norm(cfg.grad_clip);
            }
            opt.step(store, &buf);
        }
        let mean_loss = epoch_loss / seen.max(1) as f32;
        report.epoch_losses.push(mean_loss);
        // Optional plateau-based early stopping.
        if cfg.patience > 0 {
            if mean_loss < best_loss - 1e-6 {
                best_loss = mean_loss;
                stale_epochs = 0;
            } else {
                stale_epochs += 1;
                if stale_epochs >= cfg.patience {
                    break;
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptraj_data::trajectory::T_TOTAL;

    fn window_for(domain: DomainId, v: f32) -> TrajWindow {
        let focal: Vec<Point> = (0..T_TOTAL).map(|t| [v * t as f32, 0.0]).collect();
        TrajWindow::from_world(&focal, &[], domain)
    }

    #[test]
    fn cap_takes_chronological_prefix_per_domain() {
        let mut train = Vec::new();
        for i in 0..10 {
            train.push(window_for(DomainId::EthUcy, 0.1 + i as f32 * 0.01));
        }
        for i in 0..4 {
            train.push(window_for(DomainId::Syi, 0.5 + i as f32 * 0.01));
        }
        let cfg = TrainerConfig {
            max_train_windows: 3,
            ..TrainerConfig::smoke()
        };
        let capped = cap_per_domain(&train, &cfg);
        assert_eq!(capped.len(), 6);
        assert_eq!(
            capped
                .iter()
                .filter(|w| w.domain == DomainId::EthUcy)
                .count(),
            3
        );
        // Prefix: the first ETH window kept is the chronologically first.
        assert_eq!(capped[0].obs, train[0].obs);
    }

    #[test]
    fn cap_zero_means_unlimited() {
        let train: Vec<TrajWindow> = (0..5).map(|_| window_for(DomainId::Sdd, 0.2)).collect();
        let cfg = TrainerConfig {
            max_train_windows: 0,
            ..TrainerConfig::smoke()
        };
        assert_eq!(cap_per_domain(&train, &cfg).len(), 5);
    }

    #[test]
    fn fit_loop_descends_a_trivial_objective() {
        use adaptraj_tensor::{GroupId, Tensor};
        let mut store = ParamStore::new();
        let p = store.register("p", Tensor::row(&[5.0]), GroupId::DEFAULT);
        let mut opt = Adam::new(0.2);
        let cfg = TrainerConfig {
            epochs: 30,
            batch_size: 2,
            ..TrainerConfig::smoke()
        };
        let train: Vec<TrajWindow> = (0..4).map(|_| window_for(DomainId::LCas, 0.1)).collect();
        let windows: Vec<&TrajWindow> = train.iter().collect();
        let mut rng = Rng::seed_from(0);
        let report = fit_loop(&mut store, &mut opt, &cfg, &windows, &mut rng, |s, tape, _w, _r| {
            let pv = tape.param(s, p);
            let sq = tape.mul(pv, pv);
            tape.sum_all(sq)
        });
        assert_eq!(report.epoch_losses.len(), 30);
        assert!(report.final_loss().unwrap() < report.epoch_losses[0] * 0.05);
    }

    #[test]
    fn patience_stops_on_plateau() {
        use adaptraj_tensor::{GroupId, Tensor};
        let mut store = ParamStore::new();
        // Constant loss (no trainable influence) ⇒ plateau from epoch 1.
        let p = store.register("p", Tensor::row(&[1.0]), GroupId::DEFAULT);
        let mut opt = Adam::new(0.0); // lr 0: loss can never improve
        let cfg = TrainerConfig {
            epochs: 50,
            batch_size: 2,
            patience: 3,
            ..TrainerConfig::smoke()
        };
        let train: Vec<TrajWindow> = (0..4).map(|_| window_for(DomainId::LCas, 0.1)).collect();
        let windows: Vec<&TrajWindow> = train.iter().collect();
        let mut rng = Rng::seed_from(0);
        let report = fit_loop(&mut store, &mut opt, &cfg, &windows, &mut rng, |s, tape, _w, _r| {
            let pv = tape.param(s, p);
            let sq = tape.mul(pv, pv);
            tape.sum_all(sq)
        });
        // 1 epoch to set the best + 3 stale epochs = 4 total.
        assert_eq!(report.epoch_losses.len(), 4, "{:?}", report.epoch_losses);
    }

    #[test]
    fn fit_loop_empty_data_is_a_noop() {
        let mut store = ParamStore::new();
        let mut opt = Adam::new(0.05);
        let cfg = TrainerConfig::smoke();
        let mut rng = Rng::seed_from(0);
        let report = fit_loop(&mut store, &mut opt, &cfg, &[], &mut rng, |_, tape, _, _| {
            tape.constant(adaptraj_tensor::Tensor::scalar(0.0))
        });
        assert!(report.epoch_losses.is_empty());
    }
}
