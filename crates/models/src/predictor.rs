//! The user-facing predictor abstraction and the shared training loop.

use crate::config::TrainerConfig;
use adaptraj_data::batch::shuffled_batches;
use adaptraj_data::domain::DomainId;
use adaptraj_data::trajectory::{Point, TrajWindow};
use adaptraj_obs::{obs_info, obs_warn, profile, EpochRecord, GroupNorm, PhaseTiming, Span};
use adaptraj_tensor::optim::Adam;
use adaptraj_tensor::{GradBuffer, GroupId, ParamStore, Rng, Tape, Var};
use std::time::Instant;

/// Per-epoch training telemetry: the legacy mean-loss curve plus the full
/// per-epoch records and per-phase wall-clock consumed by the run
/// manifest (`--manifest`).
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    pub epoch_losses: Vec<f32>,
    pub epochs: Vec<EpochRecord>,
    pub phases: Vec<PhaseTiming>,
}

impl TrainReport {
    pub fn final_loss(&self) -> Option<f32> {
        self.epoch_losses.last().copied()
    }

    /// Total windows skipped due to non-finite losses.
    pub fn non_finite_total(&self) -> u64 {
        self.epochs.iter().map(|e| e.non_finite_batches).sum()
    }
}

/// Workspace-wide optimizer-group labels. Group numbering is a cross-crate
/// convention: 0 is the backbone/default group ([`crate::BACKBONE_GROUP`]);
/// 1–4 are the AdapTraj framework groups defined in `adaptraj-core`.
pub fn group_label(g: GroupId) -> &'static str {
    match g.0 {
        0 => "backbone",
        1 => "invariant",
        2 => "specific",
        3 => "aggregator",
        4 => "aux",
        _ => "other",
    }
}

/// Per-optimizer-group gradient and parameter L2 norms for one batch's
/// gradient buffer. Groups with no registered parameters are absent;
/// groups whose parameters received no gradient report `grad_norm = 0`.
pub fn group_norms(store: &ParamStore, buf: &GradBuffer) -> Vec<GroupNorm> {
    // (group, grad_sq, param_sq), ordered by first appearance then sorted.
    let mut acc: Vec<(u32, f64, f64)> = Vec::new();
    let slot = |acc: &mut Vec<(u32, f64, f64)>, g: u32| -> usize {
        match acc.iter().position(|(gg, _, _)| *gg == g) {
            Some(i) => i,
            None => {
                acc.push((g, 0.0, 0.0));
                acc.len() - 1
            }
        }
    };
    for id in store.ids() {
        let i = slot(&mut acc, store.group(id).0);
        acc[i].2 += store.value(id).frob_sq() as f64;
    }
    for (id, grad) in buf.iter() {
        let i = slot(&mut acc, store.group(id).0);
        acc[i].1 += grad.frob_sq() as f64;
    }
    acc.sort_by_key(|(g, _, _)| *g);
    acc.into_iter()
        .map(|(g, grad_sq, param_sq)| GroupNorm {
            group: g,
            label: group_label(GroupId(g)).to_string(),
            grad_norm: grad_sq.sqrt(),
            param_norm: param_sq.sqrt(),
        })
        .collect()
}

/// A trained (or trainable) trajectory predictor: a backbone wrapped in a
/// learning method.
pub trait Predictor {
    /// `"<backbone>-<method>"`, e.g. `"PECNet-Counter"`.
    fn name(&self) -> String;

    /// Trains on pooled source-domain windows. Windows carry their
    /// [`DomainId`]; methods that need per-domain structure (AdapTraj)
    /// group by it, the baselines pool everything (matching the paper's
    /// adaptation of single-source methods).
    fn fit(&mut self, train: &[TrajWindow]) -> TrainReport;

    /// One sampled future for a window.
    fn predict(&self, w: &TrajWindow, rng: &mut Rng) -> Vec<Point>;

    /// `k` independent future samples (for best-of-k evaluation).
    fn predict_k(&self, w: &TrajWindow, k: usize, rng: &mut Rng) -> Vec<Vec<Point>> {
        (0..k).map(|_| self.predict(w, rng)).collect()
    }

    /// The model's parameters (for checkpointing via
    /// [`adaptraj_tensor::serialize`]).
    fn store(&self) -> &ParamStore;

    /// Mutable parameter access (checkpoint loading).
    fn store_mut(&mut self) -> &mut ParamStore;
}

/// Caps training windows per domain at `cfg.max_train_windows`
/// (chronological prefix, so no future leakage) and returns the pooled
/// working set.
pub fn cap_per_domain<'a>(train: &'a [TrajWindow], cfg: &TrainerConfig) -> Vec<&'a TrajWindow> {
    if cfg.max_train_windows == 0 {
        return train.iter().collect();
    }
    let mut taken: Vec<(DomainId, usize)> = Vec::new();
    let mut out = Vec::new();
    for w in train {
        let count = match taken.iter_mut().find(|(d, _)| *d == w.domain) {
            Some((_, c)) => c,
            None => {
                taken.push((w.domain, 0));
                &mut taken.last_mut().expect("just pushed").1
            }
        };
        if *count < cfg.max_train_windows {
            *count += 1;
            out.push(w);
        }
    }
    out
}

/// The shared mini-batch training loop: per window, `per_window` builds a
/// scalar loss on a fresh tape; gradients are averaged over the batch,
/// clipped, and applied with the provided Adam optimizer.
pub fn fit_loop<F>(
    store: &mut ParamStore,
    opt: &mut Adam,
    cfg: &TrainerConfig,
    windows: &[&TrajWindow],
    rng: &mut Rng,
    per_window: F,
) -> TrainReport
where
    F: FnMut(&ParamStore, &mut Tape, &TrajWindow, &mut Rng) -> Var,
{
    fit_loop_phase(store, opt, cfg, windows, rng, "train", 0, per_window)
}

/// [`fit_loop`] with explicit telemetry labeling: `phase` names this run
/// of the loop in epoch records and phase timings ("train" for
/// single-phase methods; "step1"/"step2"/"step3" under the AdapTraj
/// schedule) and `epoch_offset` keeps epoch numbering global when a
/// schedule invokes the loop repeatedly.
///
/// Telemetry per epoch: an `epoch` span (debug level), mean loss over
/// *finite* windows, the batch-averaged pre-clip global gradient norm,
/// per-group gradient/parameter norms from the final batch, and a count
/// of windows skipped because their loss came back non-finite (the guard
/// keeps a single NaN forward pass from corrupting the whole parameter
/// store).
#[allow(clippy::too_many_arguments)]
pub fn fit_loop_phase<F>(
    store: &mut ParamStore,
    opt: &mut Adam,
    cfg: &TrainerConfig,
    windows: &[&TrajWindow],
    rng: &mut Rng,
    phase: &str,
    epoch_offset: usize,
    mut per_window: F,
) -> TrainReport
where
    F: FnMut(&ParamStore, &mut Tape, &TrajWindow, &mut Rng) -> Var,
{
    let mut report = TrainReport::default();
    if windows.is_empty() {
        return report;
    }
    let phase_start = Instant::now();
    let mut best_loss = f32::INFINITY;
    let mut stale_epochs = 0usize;
    for epoch in 0..cfg.epochs {
        let global_epoch = epoch + epoch_offset;
        let mut span = Span::enter("models.fit", "epoch").with("epoch", global_epoch);
        // Profiler attribution: ops in this epoch land under the loop's
        // phase label ("train" for single-phase methods).
        let _profile_phase = profile::phase(phase);
        let epoch_start = Instant::now();
        let mut rec = EpochRecord::new(global_epoch, phase);
        let mut epoch_loss = 0.0f64;
        let mut seen = 0usize;
        let mut grad_norm_sum = 0.0f64;
        let mut batches = 0usize;
        for batch in shuffled_batches(windows.len(), cfg.batch_size, rng) {
            let mut buf = GradBuffer::new();
            let inv = 1.0 / batch.len() as f32;
            for &i in &batch {
                let mut tape = Tape::new();
                let loss = per_window(store, &mut tape, windows[i], rng);
                let val = tape.value(loss).item();
                if !val.is_finite() {
                    rec.non_finite_batches += 1;
                    obs_warn!(
                        "models.fit",
                        "non-finite loss at epoch {global_epoch}, window {i}; skipping"
                    );
                    continue;
                }
                let grads = tape.backward(loss);
                buf.absorb_scaled(&tape, &grads, inv);
                epoch_loss += val as f64;
                seen += 1;
            }
            let norm = if cfg.grad_clip > 0.0 {
                buf.clip_global_norm(cfg.grad_clip)
            } else {
                buf.global_norm()
            };
            grad_norm_sum += norm as f64;
            batches += 1;
            rec.group_norms = group_norms(store, &buf);
            opt.step(store, &buf);
        }
        let mean_loss = (epoch_loss / seen.max(1) as f64) as f32;
        rec.loss = mean_loss as f64;
        rec.grad_norm = grad_norm_sum / batches.max(1) as f64;
        rec.duration_s = epoch_start.elapsed().as_secs_f64();
        span.record("loss", rec.loss);
        span.record("grad_norm", rec.grad_norm);
        report.epoch_losses.push(mean_loss);
        // Optional plateau-based early stopping.
        let mut stop = false;
        if cfg.patience > 0 {
            if mean_loss < best_loss - 1e-6 {
                best_loss = mean_loss;
                stale_epochs = 0;
            } else {
                stale_epochs += 1;
                if stale_epochs >= cfg.patience {
                    rec.early_stop = true;
                    stop = true;
                    obs_info!(
                        "models.fit",
                        "early stop at epoch {global_epoch}: no improvement for {} epochs",
                        cfg.patience
                    );
                }
            }
        }
        report.epochs.push(rec);
        if stop {
            break;
        }
    }
    report
        .phases
        .push(PhaseTiming::new(phase, phase_start.elapsed().as_secs_f64()));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptraj_data::trajectory::T_TOTAL;

    fn window_for(domain: DomainId, v: f32) -> TrajWindow {
        let focal: Vec<Point> = (0..T_TOTAL).map(|t| [v * t as f32, 0.0]).collect();
        TrajWindow::from_world(&focal, &[], domain)
    }

    #[test]
    fn cap_takes_chronological_prefix_per_domain() {
        let mut train = Vec::new();
        for i in 0..10 {
            train.push(window_for(DomainId::EthUcy, 0.1 + i as f32 * 0.01));
        }
        for i in 0..4 {
            train.push(window_for(DomainId::Syi, 0.5 + i as f32 * 0.01));
        }
        let cfg = TrainerConfig {
            max_train_windows: 3,
            ..TrainerConfig::smoke()
        };
        let capped = cap_per_domain(&train, &cfg);
        assert_eq!(capped.len(), 6);
        assert_eq!(
            capped
                .iter()
                .filter(|w| w.domain == DomainId::EthUcy)
                .count(),
            3
        );
        // Prefix: the first ETH window kept is the chronologically first.
        assert_eq!(capped[0].obs, train[0].obs);
    }

    #[test]
    fn cap_zero_means_unlimited() {
        let train: Vec<TrajWindow> = (0..5).map(|_| window_for(DomainId::Sdd, 0.2)).collect();
        let cfg = TrainerConfig {
            max_train_windows: 0,
            ..TrainerConfig::smoke()
        };
        assert_eq!(cap_per_domain(&train, &cfg).len(), 5);
    }

    #[test]
    fn fit_loop_descends_a_trivial_objective() {
        use adaptraj_tensor::{GroupId, Tensor};
        let mut store = ParamStore::new();
        let p = store.register("p", Tensor::row(&[5.0]), GroupId::DEFAULT);
        let mut opt = Adam::new(0.2);
        let cfg = TrainerConfig {
            epochs: 30,
            batch_size: 2,
            ..TrainerConfig::smoke()
        };
        let train: Vec<TrajWindow> = (0..4).map(|_| window_for(DomainId::LCas, 0.1)).collect();
        let windows: Vec<&TrajWindow> = train.iter().collect();
        let mut rng = Rng::seed_from(0);
        let report = fit_loop(
            &mut store,
            &mut opt,
            &cfg,
            &windows,
            &mut rng,
            |s, tape, _w, _r| {
                let pv = tape.param(s, p);
                let sq = tape.mul(pv, pv);
                tape.sum_all(sq)
            },
        );
        assert_eq!(report.epoch_losses.len(), 30);
        assert!(report.final_loss().unwrap() < report.epoch_losses[0] * 0.05);
    }

    #[test]
    fn patience_stops_on_plateau() {
        use adaptraj_tensor::{GroupId, Tensor};
        let mut store = ParamStore::new();
        // Constant loss (no trainable influence) ⇒ plateau from epoch 1.
        let p = store.register("p", Tensor::row(&[1.0]), GroupId::DEFAULT);
        let mut opt = Adam::new(0.0); // lr 0: loss can never improve
        let cfg = TrainerConfig {
            epochs: 50,
            batch_size: 2,
            patience: 3,
            ..TrainerConfig::smoke()
        };
        let train: Vec<TrajWindow> = (0..4).map(|_| window_for(DomainId::LCas, 0.1)).collect();
        let windows: Vec<&TrajWindow> = train.iter().collect();
        let mut rng = Rng::seed_from(0);
        let report = fit_loop(
            &mut store,
            &mut opt,
            &cfg,
            &windows,
            &mut rng,
            |s, tape, _w, _r| {
                let pv = tape.param(s, p);
                let sq = tape.mul(pv, pv);
                tape.sum_all(sq)
            },
        );
        // 1 epoch to set the best + 3 stale epochs = 4 total.
        assert_eq!(report.epoch_losses.len(), 4, "{:?}", report.epoch_losses);
        // The telemetry mirror agrees and flags the stopping epoch.
        assert_eq!(report.epochs.len(), 4);
        assert!(report.epochs.last().unwrap().early_stop);
        assert!(report.epochs[..3].iter().all(|e| !e.early_stop));
    }

    #[test]
    fn fit_loop_records_epoch_telemetry() {
        use adaptraj_tensor::{GroupId, Tensor};
        let mut store = ParamStore::new();
        let p = store.register("p", Tensor::row(&[2.0]), GroupId::DEFAULT);
        let mut opt = Adam::new(0.05);
        let cfg = TrainerConfig {
            epochs: 3,
            batch_size: 2,
            ..TrainerConfig::smoke()
        };
        let train: Vec<TrajWindow> = (0..4).map(|_| window_for(DomainId::LCas, 0.1)).collect();
        let windows: Vec<&TrajWindow> = train.iter().collect();
        let mut rng = Rng::seed_from(0);
        let report = fit_loop(
            &mut store,
            &mut opt,
            &cfg,
            &windows,
            &mut rng,
            |s, tape, _w, _r| {
                let pv = tape.param(s, p);
                let sq = tape.mul(pv, pv);
                tape.sum_all(sq)
            },
        );
        assert_eq!(report.epochs.len(), 3);
        for (i, e) in report.epochs.iter().enumerate() {
            assert_eq!(e.epoch, i);
            assert_eq!(e.phase, "train");
            assert!(e.loss.is_finite());
            assert!(e.grad_norm.is_finite() && e.grad_norm > 0.0);
            assert!(e.duration_s >= 0.0);
            assert_eq!(e.non_finite_batches, 0);
            let g = e
                .group_norms
                .iter()
                .find(|g| g.group == 0)
                .expect("default group norms recorded");
            assert_eq!(g.label, "backbone");
            assert!(g.grad_norm > 0.0 && g.param_norm > 0.0);
        }
        // The legacy curve and the telemetry agree.
        for (l, e) in report.epoch_losses.iter().zip(&report.epochs) {
            assert!((f64::from(*l) - e.loss).abs() < 1e-9);
        }
        assert_eq!(report.phases.len(), 1);
        assert_eq!(report.phases[0].phase, "train");
    }

    // Debug builds reject non-finite tensors at op-creation time
    // (`debug_assert` in `Tape::push`), so the runtime guard in `fit_loop`
    // is release-path behavior and can only be exercised there.
    #[cfg(not(debug_assertions))]
    #[test]
    fn non_finite_losses_are_guarded_not_applied() {
        use adaptraj_tensor::{GroupId, Tensor};
        let mut store = ParamStore::new();
        let p = store.register("p", Tensor::row(&[1.0]), GroupId::DEFAULT);
        let before = store.value(p).clone();
        let mut opt = Adam::new(0.1);
        let cfg = TrainerConfig {
            epochs: 1,
            batch_size: 4,
            ..TrainerConfig::smoke()
        };
        let train: Vec<TrajWindow> = (0..4).map(|_| window_for(DomainId::LCas, 0.1)).collect();
        let windows: Vec<&TrajWindow> = train.iter().collect();
        let mut rng = Rng::seed_from(0);
        // Every window produces a NaN loss; the guard must skip them all,
        // leaving the parameter untouched and the skips counted.
        let report = fit_loop(
            &mut store,
            &mut opt,
            &cfg,
            &windows,
            &mut rng,
            |_, tape, _w, _r| tape.constant(Tensor::scalar(f32::NAN)),
        );
        assert_eq!(report.epochs[0].non_finite_batches, 4);
        assert_eq!(store.value(p), &before, "NaN gradients leaked into params");
    }

    #[test]
    fn fit_loop_empty_data_is_a_noop() {
        let mut store = ParamStore::new();
        let mut opt = Adam::new(0.05);
        let cfg = TrainerConfig::smoke();
        let mut rng = Rng::seed_from(0);
        let report = fit_loop(
            &mut store,
            &mut opt,
            &cfg,
            &[],
            &mut rng,
            |_, tape, _, _| tape.constant(adaptraj_tensor::Tensor::scalar(0.0)),
        );
        assert!(report.epoch_losses.is_empty());
    }
}
