//! The user-facing predictor abstraction and shared training-report
//! plumbing. The training loop itself lives in [`crate::trainer::Trainer`].

use crate::config::TrainerConfig;
use adaptraj_data::domain::DomainId;
use adaptraj_data::trajectory::{Point, TrajWindow};
use adaptraj_data::WindowBatch;
use adaptraj_obs::{EpochRecord, GroupNorm, PhaseTiming};
use adaptraj_tensor::{GradBuffer, GroupId, ParamStore, Rng};

/// Per-epoch training telemetry: the legacy mean-loss curve plus the full
/// per-epoch records and per-phase wall-clock consumed by the run
/// manifest (`--manifest`).
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    pub epoch_losses: Vec<f32>,
    pub epochs: Vec<EpochRecord>,
    pub phases: Vec<PhaseTiming>,
}

impl TrainReport {
    pub fn final_loss(&self) -> Option<f32> {
        self.epoch_losses.last().copied()
    }

    /// Total windows skipped due to non-finite losses.
    pub fn non_finite_total(&self) -> u64 {
        self.epochs.iter().map(|e| e.non_finite_batches).sum()
    }
}

/// Workspace-wide optimizer-group labels. Group numbering is a cross-crate
/// convention: 0 is the backbone/default group ([`crate::BACKBONE_GROUP`]);
/// 1–4 are the AdapTraj framework groups defined in `adaptraj-core`.
pub fn group_label(g: GroupId) -> &'static str {
    match g.0 {
        0 => "backbone",
        1 => "invariant",
        2 => "specific",
        3 => "aggregator",
        4 => "aux",
        _ => "other",
    }
}

/// Per-optimizer-group gradient and parameter L2 norms for one batch's
/// gradient buffer. Groups with no registered parameters are absent;
/// groups whose parameters received no gradient report `grad_norm = 0`.
pub fn group_norms(store: &ParamStore, buf: &GradBuffer) -> Vec<GroupNorm> {
    // (group, grad_sq, param_sq), ordered by first appearance then sorted.
    let mut acc: Vec<(u32, f64, f64)> = Vec::new();
    let slot = |acc: &mut Vec<(u32, f64, f64)>, g: u32| -> usize {
        match acc.iter().position(|(gg, _, _)| *gg == g) {
            Some(i) => i,
            None => {
                acc.push((g, 0.0, 0.0));
                acc.len() - 1
            }
        }
    };
    for id in store.ids() {
        let i = slot(&mut acc, store.group(id).0);
        acc[i].2 += store.value(id).frob_sq() as f64;
    }
    for (id, grad) in buf.iter() {
        let i = slot(&mut acc, store.group(id).0);
        acc[i].1 += grad.frob_sq() as f64;
    }
    acc.sort_by_key(|(g, _, _)| *g);
    acc.into_iter()
        .map(|(g, grad_sq, param_sq)| GroupNorm {
            group: g,
            label: group_label(GroupId(g)).to_string(),
            grad_norm: grad_sq.sqrt(),
            param_norm: param_sq.sqrt(),
        })
        .collect()
}

/// A trained (or trainable) trajectory predictor: a backbone wrapped in a
/// learning method.
///
/// `Send + Sync` is a supertrait so the eval runner can fan predictions
/// out over worker threads; predictors hold only configuration and their
/// [`ParamStore`], so every impl satisfies it automatically.
pub trait Predictor: Send + Sync {
    /// `"<backbone>-<method>"`, e.g. `"PECNet-Counter"`.
    fn name(&self) -> String;

    /// Trains on pooled source-domain windows. Windows carry their
    /// [`DomainId`]; methods that need per-domain structure (AdapTraj)
    /// group by it, the baselines pool everything (matching the paper's
    /// adaptation of single-source methods).
    fn fit(&mut self, train: &[TrajWindow]) -> TrainReport;

    /// One sampled future for a window.
    fn predict(&self, w: &TrajWindow, rng: &mut Rng) -> Vec<Point>;

    /// `k` independent future samples (for best-of-k evaluation).
    fn predict_k(&self, w: &TrajWindow, k: usize, rng: &mut Rng) -> Vec<Vec<Point>> {
        (0..k).map(|_| self.predict(w, rng)).collect()
    }

    /// One sampled future per window of a coalesced batch, with one rng
    /// per window in batch order.
    ///
    /// Contract (the serving bit-identity contract, pinned by
    /// `batch_equivalence.rs` and `tests/serve.rs`): window `b`'s points
    /// are bit-identical to `predict(windows()[b], &mut rngs[b])`, no
    /// matter how many other windows share the batch. Batched kernels are
    /// row-wise over per-window rows, pad slots contribute exact zeros,
    /// and each window draws latents from its own rng stream, so a batch
    /// of B reproduces B batch-of-one passes bit for bit. Each `rngs[b]`
    /// is advanced exactly as `predict` would advance it, so repeated
    /// calls continue the per-window sample streams.
    ///
    /// The default runs per-window batch-of-one passes; method impls
    /// override it with a single batched tape pass.
    fn predict_batch(&self, batch: &WindowBatch<'_>, rngs: &mut [Rng]) -> Vec<Vec<Point>> {
        assert_eq!(batch.len(), rngs.len(), "one rng per batched window");
        batch
            .windows()
            .iter()
            .zip(rngs.iter_mut())
            .map(|(w, rng)| self.predict(w, rng))
            .collect()
    }

    /// The model's parameters (for checkpointing via
    /// [`adaptraj_tensor::serialize`]).
    fn store(&self) -> &ParamStore;

    /// Mutable parameter access (checkpoint loading).
    fn store_mut(&mut self) -> &mut ParamStore;
}

/// Caps training windows per domain at `cfg.max_train_windows`
/// (chronological prefix, so no future leakage) and returns the pooled
/// working set.
///
/// Deterministic by window index: per domain, the kept windows are the
/// `max_train_windows` with the lowest indices into `train`, and the
/// output preserves ascending index order regardless of how domains
/// interleave in the input slice.
pub fn cap_per_domain<'a>(train: &'a [TrajWindow], cfg: &TrainerConfig) -> Vec<&'a TrajWindow> {
    if cfg.max_train_windows == 0 {
        return train.iter().collect();
    }
    // Pass 1: group window indices per domain, in index order.
    let mut per_domain: Vec<(DomainId, Vec<usize>)> = Vec::new();
    for (i, w) in train.iter().enumerate() {
        match per_domain.iter_mut().find(|(d, _)| *d == w.domain) {
            Some((_, idxs)) => idxs.push(i),
            None => per_domain.push((w.domain, vec![i])),
        }
    }
    // Pass 2: truncate each domain to its chronological prefix, then emit
    // the union in ascending index order.
    let mut keep: Vec<usize> = per_domain
        .into_iter()
        .flat_map(|(_, mut idxs)| {
            idxs.truncate(cfg.max_train_windows);
            idxs
        })
        .collect();
    keep.sort_unstable();
    keep.into_iter().map(|i| &train[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::Trainer;
    use adaptraj_data::trajectory::T_TOTAL;
    use adaptraj_tensor::optim::Adam;

    fn window_for(domain: DomainId, v: f32) -> TrajWindow {
        let focal: Vec<Point> = (0..T_TOTAL).map(|t| [v * t as f32, 0.0]).collect();
        TrajWindow::from_world(&focal, &[], domain)
    }

    #[test]
    fn cap_takes_chronological_prefix_per_domain() {
        let mut train = Vec::new();
        for i in 0..10 {
            train.push(window_for(DomainId::EthUcy, 0.1 + i as f32 * 0.01));
        }
        for i in 0..4 {
            train.push(window_for(DomainId::Syi, 0.5 + i as f32 * 0.01));
        }
        let cfg = TrainerConfig {
            max_train_windows: 3,
            ..TrainerConfig::smoke()
        };
        let capped = cap_per_domain(&train, &cfg);
        assert_eq!(capped.len(), 6);
        assert_eq!(
            capped
                .iter()
                .filter(|w| w.domain == DomainId::EthUcy)
                .count(),
            3
        );
        // Prefix: the first ETH window kept is the chronologically first.
        assert_eq!(capped[0].obs, train[0].obs);
    }

    #[test]
    fn cap_is_deterministic_by_index_on_interleaved_domains() {
        // ETH and SDD windows alternate; the cap must keep each domain's
        // lowest-index windows and emit them in ascending index order.
        let mut train = Vec::new();
        for i in 0..5 {
            train.push(window_for(DomainId::EthUcy, 0.10 + i as f32 * 0.01));
            train.push(window_for(DomainId::Sdd, 0.50 + i as f32 * 0.01));
        }
        let cfg = TrainerConfig {
            max_train_windows: 2,
            ..TrainerConfig::smoke()
        };
        let capped = cap_per_domain(&train, &cfg);
        // Pinned: indices 0,1 (first ETH, first SDD) then 2,3 (second of
        // each) — domains interleaved exactly as in the input prefix.
        assert_eq!(capped.len(), 4);
        let got: Vec<(DomainId, Point)> = capped.iter().map(|w| (w.domain, w.obs[1])).collect();
        let want: Vec<(DomainId, Point)> =
            train[..4].iter().map(|w| (w.domain, w.obs[1])).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn cap_zero_means_unlimited() {
        let train: Vec<TrajWindow> = (0..5).map(|_| window_for(DomainId::Sdd, 0.2)).collect();
        let cfg = TrainerConfig {
            max_train_windows: 0,
            ..TrainerConfig::smoke()
        };
        assert_eq!(cap_per_domain(&train, &cfg).len(), 5);
    }

    #[test]
    fn trainer_descends_a_trivial_objective() {
        use adaptraj_tensor::{GroupId, Tensor};
        let mut store = ParamStore::new();
        let p = store.register("p", Tensor::row(&[5.0]), GroupId::DEFAULT);
        let mut opt = Adam::new(0.2);
        let cfg = TrainerConfig {
            epochs: 30,
            batch_size: 2,
            ..TrainerConfig::smoke()
        };
        let train: Vec<TrajWindow> = (0..4).map(|_| window_for(DomainId::LCas, 0.1)).collect();
        let windows: Vec<&TrajWindow> = train.iter().collect();
        let mut rng = Rng::seed_from(0);
        let report = Trainer::new(&cfg).fit(
            &mut store,
            &mut opt,
            &windows,
            &mut rng,
            |s, tape, _wb, _rngs| {
                let pv = tape.param(s, p);
                let sq = tape.mul(pv, pv);
                tape.sum_all(sq)
            },
        );
        assert_eq!(report.epoch_losses.len(), 30);
        assert!(report.final_loss().unwrap() < report.epoch_losses[0] * 0.05);
    }

    #[test]
    fn patience_stops_on_plateau() {
        use adaptraj_tensor::{GroupId, Tensor};
        let mut store = ParamStore::new();
        // Constant loss (no trainable influence) ⇒ plateau from epoch 1.
        let p = store.register("p", Tensor::row(&[1.0]), GroupId::DEFAULT);
        let mut opt = Adam::new(0.0); // lr 0: loss can never improve
        let cfg = TrainerConfig {
            epochs: 50,
            batch_size: 2,
            patience: 3,
            ..TrainerConfig::smoke()
        };
        let train: Vec<TrajWindow> = (0..4).map(|_| window_for(DomainId::LCas, 0.1)).collect();
        let windows: Vec<&TrajWindow> = train.iter().collect();
        let mut rng = Rng::seed_from(0);
        let report = Trainer::new(&cfg).fit(
            &mut store,
            &mut opt,
            &windows,
            &mut rng,
            |s, tape, _w, _r| {
                let pv = tape.param(s, p);
                let sq = tape.mul(pv, pv);
                tape.sum_all(sq)
            },
        );
        // 1 epoch to set the best + 3 stale epochs = 4 total.
        assert_eq!(report.epoch_losses.len(), 4, "{:?}", report.epoch_losses);
        // The telemetry mirror agrees and flags the stopping epoch.
        assert_eq!(report.epochs.len(), 4);
        assert!(report.epochs.last().unwrap().early_stop);
        assert!(report.epochs[..3].iter().all(|e| !e.early_stop));
    }

    #[test]
    fn trainer_records_epoch_telemetry() {
        use adaptraj_tensor::{GroupId, Tensor};
        let mut store = ParamStore::new();
        let p = store.register("p", Tensor::row(&[2.0]), GroupId::DEFAULT);
        let mut opt = Adam::new(0.05);
        let cfg = TrainerConfig {
            epochs: 3,
            batch_size: 2,
            ..TrainerConfig::smoke()
        };
        let train: Vec<TrajWindow> = (0..4).map(|_| window_for(DomainId::LCas, 0.1)).collect();
        let windows: Vec<&TrajWindow> = train.iter().collect();
        let mut rng = Rng::seed_from(0);
        let report = Trainer::new(&cfg).fit(
            &mut store,
            &mut opt,
            &windows,
            &mut rng,
            |s, tape, _w, _r| {
                let pv = tape.param(s, p);
                let sq = tape.mul(pv, pv);
                tape.sum_all(sq)
            },
        );
        assert_eq!(report.epochs.len(), 3);
        for (i, e) in report.epochs.iter().enumerate() {
            assert_eq!(e.epoch, i);
            assert_eq!(e.phase, "train");
            assert!(e.loss.is_finite());
            assert!(e.grad_norm.is_finite() && e.grad_norm > 0.0);
            assert!(e.duration_s >= 0.0);
            assert_eq!(e.non_finite_batches, 0);
            let g = e
                .group_norms
                .iter()
                .find(|g| g.group == 0)
                .expect("default group norms recorded");
            assert_eq!(g.label, "backbone");
            assert!(g.grad_norm > 0.0 && g.param_norm > 0.0);
        }
        // The legacy curve and the telemetry agree.
        for (l, e) in report.epoch_losses.iter().zip(&report.epochs) {
            assert!((f64::from(*l) - e.loss).abs() < 1e-9);
        }
        assert_eq!(report.phases.len(), 1);
        assert_eq!(report.phases[0].phase, "train");
    }

    // Debug builds reject non-finite tensors at op-creation time
    // (`debug_assert` in `Tape::push`), so the runtime guard in `Trainer::fit`
    // is release-path behavior and can only be exercised there.
    #[cfg(not(debug_assertions))]
    #[test]
    fn non_finite_losses_are_guarded_not_applied() {
        use adaptraj_tensor::{GroupId, Tensor};
        let mut store = ParamStore::new();
        let p = store.register("p", Tensor::row(&[1.0]), GroupId::DEFAULT);
        let before = store.value(p).clone();
        let mut opt = Adam::new(0.1);
        let cfg = TrainerConfig {
            epochs: 1,
            batch_size: 4,
            ..TrainerConfig::smoke()
        };
        let train: Vec<TrajWindow> = (0..4).map(|_| window_for(DomainId::LCas, 0.1)).collect();
        let windows: Vec<&TrajWindow> = train.iter().collect();
        let mut rng = Rng::seed_from(0);
        // Every window produces a NaN loss; the guard must skip them all,
        // leaving the parameter untouched and the skips counted.
        let report = Trainer::new(&cfg).fit(
            &mut store,
            &mut opt,
            &windows,
            &mut rng,
            |_, tape, _w, _r| tape.constant(Tensor::scalar(f32::NAN)),
        );
        assert_eq!(report.epochs[0].non_finite_batches, 4);
        assert_eq!(store.value(p), &before, "NaN gradients leaked into params");
    }

    #[test]
    fn fit_empty_data_is_a_noop() {
        let mut store = ParamStore::new();
        let mut opt = Adam::new(0.05);
        let cfg = TrainerConfig::smoke();
        let mut rng = Rng::seed_from(0);
        let report =
            Trainer::new(&cfg).fit(&mut store, &mut opt, &[], &mut rng, |_, tape, _, _| {
                tape.constant(adaptraj_tensor::Tensor::scalar(0.0))
            });
        assert!(report.epoch_losses.is_empty());
    }
}
