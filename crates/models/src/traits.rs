//! The backbone abstraction that learning methods (vanilla, Counter,
//! CausalMotion, AdapTraj) plug into.

use crate::backbone::{base_loss, EncodedScene};
use crate::config::BackboneConfig;
use adaptraj_data::trajectory::TrajWindow;
use adaptraj_obs::profile;
use adaptraj_tensor::{ParamStore, Rng, Tape, Var};

/// Whether a generation pass is a training pass (posterior latents,
/// teacher signals available) or an inference sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenMode {
    Train,
    Sample,
}

/// Everything a forward pass threads through the model stack: the shared
/// (read-only) parameter store, this window's tape, the stream of latent
/// draws, and the train/sample mode. Bundling these lets the worker-pool
/// executor hand one value across a thread boundary and keeps backbone
/// signatures to `(ctx, w, enc, extra)`.
#[derive(Debug)]
pub struct ForwardCtx<'a> {
    /// Parameters, shared read-only across worker threads; writes happen
    /// only at optimizer-step barriers on the dispatching thread.
    pub store: &'a ParamStore,
    /// The autodiff tape owned by this window's forward pass.
    pub tape: &'a mut Tape,
    /// Latent-draw stream. Under the executor this is a per-window rng
    /// seeded from `window_seed(run_seed, epoch, window)` so results do
    /// not depend on the worker count.
    pub rng: &'a mut Rng,
    /// Training pass (posterior latents, teacher signals) or inference
    /// sample.
    pub mode: GenMode,
}

impl<'a> ForwardCtx<'a> {
    /// Context for a training pass ([`GenMode::Train`]).
    pub fn train(store: &'a ParamStore, tape: &'a mut Tape, rng: &'a mut Rng) -> Self {
        Self {
            store,
            tape,
            rng,
            mode: GenMode::Train,
        }
    }

    /// Context for an inference sample ([`GenMode::Sample`]).
    pub fn sample(store: &'a ParamStore, tape: &'a mut Tape, rng: &'a mut Rng) -> Self {
        Self {
            store,
            tape,
            rng,
            mode: GenMode::Sample,
        }
    }
}

/// Result of one generation pass.
#[derive(Debug, Clone, Copy)]
pub struct Generation {
    /// Predicted future positions `[T_PRED, 2]` in the normalized frame.
    pub pred: Var,
    /// Backbone-specific auxiliary loss (CVAE KL + endpoint loss for
    /// PECNet; energy contrast for LBEBM). `None` in sample mode.
    pub aux_loss: Option<Var>,
}

/// A multi-agent trajectory-prediction backbone (Sec. II-C).
///
/// The split into `encode` and `generate` is what makes AdapTraj
/// plug-and-play: the framework taps `h_ei` and `P_i` from
/// [`EncodedScene`], derives its four feature types, and passes the fused
/// `[H^i | H^s]` back as `extra` conditioning for generation.
///
/// `Send + Sync` is a supertrait so the worker-pool executor can share
/// `&dyn Backbone` across threads; backbones are plain configuration data
/// (all learned state lives in the [`ParamStore`]), so every impl
/// satisfies it automatically.
pub trait Backbone: Send + Sync {
    fn name(&self) -> &'static str;

    fn config(&self) -> &BackboneConfig;

    /// Stages 1–2: individual mobility + neighbor interaction.
    fn encode(&self, store: &ParamStore, tape: &mut Tape, w: &TrajWindow) -> EncodedScene;

    /// Stage 3: future-trajectory generation conditioned on the encoded
    /// scene and an optional `extra` vector of width
    /// [`BackboneConfig::extra_dim`] (must be `Some` iff `extra_dim > 0`).
    fn generate(
        &self,
        ctx: &mut ForwardCtx<'_>,
        w: &TrajWindow,
        enc: &EncodedScene,
        extra: Option<Var>,
    ) -> Generation;
}

/// One full training forward pass: encode, generate in train mode, and
/// combine `L_base` (Eq. 8) with the backbone's auxiliary loss. Returns
/// `(prediction, loss)`. Forces [`GenMode::Train`] regardless of the mode
/// the context was built with.
pub fn train_forward<B: Backbone + ?Sized>(
    backbone: &B,
    ctx: &mut ForwardCtx<'_>,
    w: &TrajWindow,
    extra: Option<Var>,
) -> (Var, Var) {
    ctx.mode = GenMode::Train;
    let enc = {
        let _p = profile::phase("encode");
        backbone.encode(ctx.store, ctx.tape, w)
    };
    let _p = profile::phase("generate");
    let gen = backbone.generate(ctx, w, &enc, extra);
    let mut loss = base_loss(ctx.tape, gen.pred, w);
    if let Some(aux) = gen.aux_loss {
        loss = ctx.tape.add(loss, aux);
    }
    (gen.pred, loss)
}

/// One inference pass returning the predicted future positions. Forces
/// [`GenMode::Sample`].
pub fn sample_forward<B: Backbone + ?Sized>(
    backbone: &B,
    ctx: &mut ForwardCtx<'_>,
    w: &TrajWindow,
    extra: Option<Var>,
) -> Var {
    ctx.mode = GenMode::Sample;
    let enc = {
        let _p = profile::phase("encode");
        backbone.encode(ctx.store, ctx.tape, w)
    };
    let _p = profile::phase("generate");
    backbone.generate(ctx, w, &enc, extra).pred
}
