//! The backbone abstraction that learning methods (vanilla, Counter,
//! CausalMotion, AdapTraj) plug into.
//!
//! Since the batched-execution redesign every forward pass operates on a
//! [`WindowBatch`]: one tape pass encodes and generates for all windows of
//! a job at once, with batched `GEMM`/`FusedAffine`/`LstmCell` nodes.
//! The per-window path is the batch-of-one special case
//! ([`WindowBatch::single`]).

use crate::backbone::{base_loss, EncodedScene};
use crate::config::BackboneConfig;
use adaptraj_data::WindowBatch;
use adaptraj_obs::profile;
use adaptraj_tensor::{ParamStore, Rng, Tape, Tensor, Var};

/// Whether a generation pass is a training pass (posterior latents,
/// teacher signals available) or an inference sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenMode {
    Train,
    Sample,
}

/// Everything a forward pass threads through the model stack: the shared
/// (read-only) parameter store, this job's tape, the per-window streams of
/// latent draws, and the train/sample mode. Bundling these lets the
/// worker-pool executor hand one value across a thread boundary and keeps
/// backbone signatures to `(ctx, batch, enc, extra)`.
#[derive(Debug)]
pub struct ForwardCtx<'a> {
    /// Parameters, shared read-only across worker threads; writes happen
    /// only at optimizer-step barriers on the dispatching thread.
    pub store: &'a ParamStore,
    /// The autodiff tape owned by this job's forward pass.
    pub tape: &'a mut Tape,
    /// Latent-draw streams, one rng per batched window in batch order.
    /// Under the executor rng `b` is seeded from
    /// `window_seed(run_seed, epoch, ids[b])`, so each window's draws are
    /// identical whether it runs in a batch of one or of eight, and do not
    /// depend on the worker count.
    pub rngs: &'a mut [Rng],
    /// Training pass (posterior latents, teacher signals) or inference
    /// sample.
    pub mode: GenMode,
}

impl<'a> ForwardCtx<'a> {
    /// Context for a training pass ([`GenMode::Train`]).
    pub fn train(store: &'a ParamStore, tape: &'a mut Tape, rngs: &'a mut [Rng]) -> Self {
        Self {
            store,
            tape,
            rngs,
            mode: GenMode::Train,
        }
    }

    /// Context for an inference sample ([`GenMode::Sample`]).
    pub fn sample(store: &'a ParamStore, tape: &'a mut Tape, rngs: &'a mut [Rng]) -> Self {
        Self {
            store,
            tape,
            rngs,
            mode: GenMode::Sample,
        }
    }
}

/// One `[1, cols]` Gaussian draw per window, stacked into `[B, cols]` with
/// row `b` drawn from `rngs[b]`. Keeping every window on its own rng
/// stream is what makes a batched pass draw-for-draw identical to `B`
/// batch-of-one passes, independent of job formation.
pub fn randn_per_window(rngs: &mut [Rng], cols: usize, mean: f32, std: f32) -> Tensor {
    let rows: Vec<Tensor> = rngs
        .iter_mut()
        .map(|r| Tensor::randn(1, cols, mean, std, r))
        .collect();
    let refs: Vec<&Tensor> = rows.iter().collect();
    Tensor::concat_rows(&refs)
}

/// Result of one generation pass.
#[derive(Debug, Clone, Copy)]
pub struct Generation {
    /// Predicted future positions `[T_PRED·B, 2]` in the normalized frame,
    /// time-major: window `b`'s position at step `t` is row `t·B + b`. A
    /// batch of one reproduces the historical `[T_PRED, 2]` layout.
    pub pred: Var,
    /// Backbone-specific auxiliary loss, averaged over the batch (CVAE
    /// KL plus endpoint loss for PECNet; energy contrast for LBEBM).
    /// `None` in sample mode.
    pub aux_loss: Option<Var>,
}

/// A multi-agent trajectory-prediction backbone (Sec. II-C).
///
/// The split into `encode` and `generate` is what makes AdapTraj
/// plug-and-play: the framework taps `h_ei` and `P_i` from
/// [`EncodedScene`], derives its four feature types, and passes the fused
/// `[H^i | H^s]` back as `extra` conditioning for generation.
///
/// Both stages take a [`WindowBatch`] and batch along rows: `encode`
/// stacks all windows' agents ([`WindowBatch`]'s layout contract),
/// `generate` works on `[B, ·]` per-window rows. `train_forward` and
/// `sample_forward` are provided methods — the single entry points that
/// wire encode → generate → loss with the profiling phases the
/// observatory expects.
///
/// `Send + Sync` is a supertrait so the worker-pool executor can share
/// `&dyn Backbone` across threads; backbones are plain configuration data
/// (all learned state lives in the [`ParamStore`]), so every impl
/// satisfies it automatically.
pub trait Backbone: Send + Sync {
    fn name(&self) -> &'static str;

    fn config(&self) -> &BackboneConfig;

    /// Stages 1–2: individual mobility + neighbor interaction, over all
    /// windows of the batch in one pass.
    fn encode(&self, store: &ParamStore, tape: &mut Tape, batch: &WindowBatch<'_>) -> EncodedScene;

    /// Stage 3: future-trajectory generation conditioned on the encoded
    /// scene and an optional `extra` matrix of width
    /// [`BackboneConfig::extra_dim`] (must be `Some` iff `extra_dim > 0`),
    /// one row per window.
    fn generate(
        &self,
        ctx: &mut ForwardCtx<'_>,
        batch: &WindowBatch<'_>,
        enc: &EncodedScene,
        extra: Option<Var>,
    ) -> Generation;

    /// One full training forward pass: encode, generate in train mode, and
    /// combine `L_base` (Eq. 8, averaged over the batch) with the
    /// backbone's auxiliary loss. Returns `(prediction, loss)` where the
    /// loss is the batch-mean training objective. Forces [`GenMode::Train`]
    /// regardless of the mode the context was built with.
    fn train_forward(
        &self,
        ctx: &mut ForwardCtx<'_>,
        batch: &WindowBatch<'_>,
        extra: Option<Var>,
    ) -> (Var, Var) {
        ctx.mode = GenMode::Train;
        let enc = {
            let _p = profile::phase("encode");
            self.encode(ctx.store, ctx.tape, batch)
        };
        let _p = profile::phase("generate");
        let gen = self.generate(ctx, batch, &enc, extra);
        let mut loss = base_loss(ctx.tape, gen.pred, batch);
        if let Some(aux) = gen.aux_loss {
            loss = ctx.tape.add(loss, aux);
        }
        (gen.pred, loss)
    }

    /// One inference pass returning the predicted future positions
    /// (`[T_PRED·B, 2]`, time-major). Forces [`GenMode::Sample`].
    fn sample_forward(
        &self,
        ctx: &mut ForwardCtx<'_>,
        batch: &WindowBatch<'_>,
        extra: Option<Var>,
    ) -> Var {
        ctx.mode = GenMode::Sample;
        let enc = {
            let _p = profile::phase("encode");
            self.encode(ctx.store, ctx.tape, batch)
        };
        let _p = profile::phase("generate");
        self.generate(ctx, batch, &enc, extra).pred
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn randn_per_window_rows_match_independent_draws() {
        let mut rngs = vec![Rng::seed_from(7), Rng::seed_from(99)];
        let stacked = randn_per_window(&mut rngs, 4, 0.0, 1.0);
        assert_eq!(stacked.shape(), (2, 4));
        let mut r0 = Rng::seed_from(7);
        let mut r1 = Rng::seed_from(99);
        let a = Tensor::randn(1, 4, 0.0, 1.0, &mut r0);
        let b = Tensor::randn(1, 4, 0.0, 1.0, &mut r1);
        assert_eq!(&stacked.data()[..4], a.data());
        assert_eq!(&stacked.data()[4..], b.data());
    }
}
