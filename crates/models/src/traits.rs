//! The backbone abstraction that learning methods (vanilla, Counter,
//! CausalMotion, AdapTraj) plug into.

use crate::backbone::{base_loss, EncodedScene};
use crate::config::BackboneConfig;
use adaptraj_data::trajectory::TrajWindow;
use adaptraj_obs::profile;
use adaptraj_tensor::{ParamStore, Rng, Tape, Var};

/// Whether a generation pass is a training pass (posterior latents,
/// teacher signals available) or an inference sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenMode {
    Train,
    Sample,
}

/// Result of one generation pass.
#[derive(Debug, Clone, Copy)]
pub struct Generation {
    /// Predicted future positions `[T_PRED, 2]` in the normalized frame.
    pub pred: Var,
    /// Backbone-specific auxiliary loss (CVAE KL + endpoint loss for
    /// PECNet; energy contrast for LBEBM). `None` in sample mode.
    pub aux_loss: Option<Var>,
}

/// A multi-agent trajectory-prediction backbone (Sec. II-C).
///
/// The split into `encode` and `generate` is what makes AdapTraj
/// plug-and-play: the framework taps `h_ei` and `P_i` from
/// [`EncodedScene`], derives its four feature types, and passes the fused
/// `[H^i | H^s]` back as `extra` conditioning for generation.
pub trait Backbone {
    fn name(&self) -> &'static str;

    fn config(&self) -> &BackboneConfig;

    /// Stages 1–2: individual mobility + neighbor interaction.
    fn encode(&self, store: &ParamStore, tape: &mut Tape, w: &TrajWindow) -> EncodedScene;

    /// Stage 3: future-trajectory generation conditioned on the encoded
    /// scene and an optional `extra` vector of width
    /// [`BackboneConfig::extra_dim`] (must be `Some` iff `extra_dim > 0`).
    #[allow(clippy::too_many_arguments)]
    fn generate(
        &self,
        store: &ParamStore,
        tape: &mut Tape,
        w: &TrajWindow,
        enc: &EncodedScene,
        extra: Option<Var>,
        rng: &mut Rng,
        mode: GenMode,
    ) -> Generation;
}

/// One full training forward pass: encode, generate in train mode, and
/// combine `L_base` (Eq. 8) with the backbone's auxiliary loss. Returns
/// `(prediction, loss)`.
pub fn train_forward<B: Backbone + ?Sized>(
    backbone: &B,
    store: &ParamStore,
    tape: &mut Tape,
    w: &TrajWindow,
    extra: Option<Var>,
    rng: &mut Rng,
) -> (Var, Var) {
    let enc = {
        let _p = profile::phase("encode");
        backbone.encode(store, tape, w)
    };
    let _p = profile::phase("generate");
    let gen = backbone.generate(store, tape, w, &enc, extra, rng, GenMode::Train);
    let mut loss = base_loss(tape, gen.pred, w);
    if let Some(aux) = gen.aux_loss {
        loss = tape.add(loss, aux);
    }
    (gen.pred, loss)
}

/// One inference pass returning the predicted future positions.
pub fn sample_forward<B: Backbone + ?Sized>(
    backbone: &B,
    store: &ParamStore,
    tape: &mut Tape,
    w: &TrajWindow,
    extra: Option<Var>,
    rng: &mut Rng,
) -> Var {
    let enc = {
        let _p = profile::phase("encode");
        backbone.encode(store, tape, w)
    };
    let _p = profile::phase("generate");
    backbone
        .generate(store, tape, w, &enc, extra, rng, GenMode::Sample)
        .pred
}
