//! The shared seq2seq backbone skeleton (Fig. 1 of the paper).
//!
//! Three stages:
//! 1. **Individual mobility layer** — MLP location embedding (Eq. 1) fed to
//!    an LSTM or Transformer encoder (Eq. 2; the paper names both) over
//!    every agent in the window.
//! 2. **Neighbor interaction layer** — an aggregation `φ` over all agents'
//!    final hidden states producing the interaction tensor `P_i` (Eq. 3);
//!    both the attention (PECNet-style non-local) and mean-pooling
//!    (Social-LSTM-style) variants are provided.
//! 3. **Future trajectory generator** — decoder state initialized from
//!    `γ(P_i, h_i)` and a latent `z` (Eqs. 4–5), then an autoregressive
//!    LSTM rollout emitting per-step displacements (Eqs. 6–7).
//!
//! The concrete backbones (PECNet, LBEBM) compose these parts and differ
//! in how `z` is produced and which auxiliary losses they add.

use crate::config::{BackboneConfig, EncoderKind};
use adaptraj_data::trajectory::{Point, TrajWindow, T_OBS, T_PRED};
use adaptraj_tensor::nn::{Activation, Linear, Lstm, LstmCell, LstmState, Mlp, TransformerEncoder};
use adaptraj_tensor::{FusedAct, GroupId, ParamStore, Rng, Tape, Tensor, Var};

/// Parameter group for all backbone weights (the AdapTraj schedule
/// addresses modules by group).
pub const BACKBONE_GROUP: GroupId = GroupId(0);

/// Output of the encoding stages, on a tape.
#[derive(Debug, Clone, Copy)]
pub struct EncodedScene {
    /// Focal agent's individual-mobility state `h_ei` — `[1, hidden]`.
    pub h_focal: Var,
    /// Interaction tensor `P_i` — `[1, inter]`.
    pub p_i: Var,
}

/// Which `φ` aggregates the neighbors (Eq. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InteractionKind {
    /// Scaled dot-product attention with the focal agent as the query
    /// (non-local social layer, as in PECNet).
    Attention,
    /// Mean pooling of projected hidden states (Social-LSTM style).
    MeanPool,
}

/// The sequence model behind the individual-mobility encoder (Eq. 2).
#[derive(Debug, Clone)]
enum MobilityEncoder {
    Lstm(Lstm),
    Transformer(TransformerEncoder),
}

/// Stages 1–2: embedding, encoder, and interaction layer.
#[derive(Debug, Clone)]
pub struct SceneEncoder {
    embed: Linear,
    encoder: MobilityEncoder,
    kind: InteractionKind,
    w_q: Linear,
    w_k: Linear,
    w_v: Linear,
    hidden_dim: usize,
    inter_dim: usize,
}

impl SceneEncoder {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        name: &str,
        cfg: &BackboneConfig,
        kind: InteractionKind,
    ) -> Self {
        Self {
            embed: Linear::new(
                store,
                rng,
                &format!("{name}.embed"),
                2,
                cfg.embed_dim,
                BACKBONE_GROUP,
            ),
            encoder: match cfg.encoder {
                EncoderKind::Lstm => MobilityEncoder::Lstm(Lstm::new(
                    store,
                    rng,
                    &format!("{name}.enc"),
                    cfg.embed_dim,
                    cfg.hidden_dim,
                    BACKBONE_GROUP,
                )),
                EncoderKind::Transformer => MobilityEncoder::Transformer(TransformerEncoder::new(
                    store,
                    rng,
                    &format!("{name}.enc"),
                    cfg.embed_dim,
                    cfg.hidden_dim,
                    1,
                    BACKBONE_GROUP,
                )),
            },
            w_q: Linear::new(
                store,
                rng,
                &format!("{name}.wq"),
                cfg.hidden_dim,
                cfg.inter_dim,
                BACKBONE_GROUP,
            ),
            w_k: Linear::new(
                store,
                rng,
                &format!("{name}.wk"),
                cfg.hidden_dim,
                cfg.inter_dim,
                BACKBONE_GROUP,
            ),
            w_v: Linear::new(
                store,
                rng,
                &format!("{name}.wv"),
                cfg.hidden_dim,
                cfg.inter_dim,
                BACKBONE_GROUP,
            ),
            kind,
            hidden_dim: cfg.hidden_dim,
            inter_dim: cfg.inter_dim,
        }
    }

    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    pub fn inter_dim(&self) -> usize {
        self.inter_dim
    }

    /// Stacks all agents' positions at observation step `t` into an
    /// `[N, 2]` tensor (row 0 = focal).
    fn step_positions(w: &TrajWindow, t: usize) -> Tensor {
        let n = w.agents();
        let mut data = Vec::with_capacity(n * 2);
        data.extend_from_slice(&w.obs[t]);
        for nb in &w.neighbors {
            data.extend_from_slice(&nb[t]);
        }
        Tensor::from_vec(n, 2, data)
    }

    /// Stacks one agent's observed track as a `[T_OBS, 2]` tensor.
    fn agent_track(w: &TrajWindow, agent: usize) -> Tensor {
        let track = if agent == 0 {
            &w.obs
        } else {
            &w.neighbors[agent - 1]
        };
        let mut data = Vec::with_capacity(T_OBS * 2);
        for p in track {
            data.extend_from_slice(p);
        }
        Tensor::from_vec(T_OBS, 2, data)
    }

    /// Encodes a window: every agent through Eq. 1–2, then `φ` (Eq. 3).
    pub fn encode(&self, store: &ParamStore, tape: &mut Tape, w: &TrajWindow) -> EncodedScene {
        let h_all = match &self.encoder {
            // Eq. 1–2 over all agents jointly (agents are batch rows).
            MobilityEncoder::Lstm(lstm) => {
                let mut steps = Vec::with_capacity(T_OBS);
                for t in 0..T_OBS {
                    let pos = tape.constant(Self::step_positions(w, t));
                    steps.push(self.embed.forward_act(store, tape, pos, FusedAct::Relu));
                }
                let (_, final_state) = lstm.forward(store, tape, &steps);
                final_state.h // [N, hidden]
            }
            // Per-agent sequences through the attention encoder.
            MobilityEncoder::Transformer(trf) => {
                let rows: Vec<Var> = (0..w.agents())
                    .map(|a| {
                        let seq = tape.constant(Self::agent_track(w, a));
                        let e = self.embed.forward_act(store, tape, seq, FusedAct::Relu);
                        trf.encode_sequence(store, tape, e)
                    })
                    .collect();
                tape.concat_rows(&rows) // [N, hidden]
            }
        };
        let h_focal = tape.gather_rows(h_all, &[0]);

        // Eq. 3.
        let p_i = match self.kind {
            InteractionKind::Attention => {
                let q = self.w_q.forward(store, tape, h_focal); // [1, d]
                let k = self.w_k.forward(store, tape, h_all); // [N, d]
                let v = self.w_v.forward(store, tape, h_all); // [N, d]
                let scores = tape.matmul_nt(q, k); // [1, N], q·kᵀ untransposed
                let scaled = tape.scale(scores, 1.0 / (self.inter_dim as f32).sqrt());
                let attn = tape.softmax_rows(scaled);
                tape.matmul(attn, v) // [1, d]
            }
            InteractionKind::MeanPool => {
                let act = self.w_v.forward_act(store, tape, h_all, FusedAct::Relu);
                tape.mean_rows(act)
            }
        };
        EncodedScene { h_focal, p_i }
    }
}

/// Stage 3: the autoregressive future-trajectory generator.
#[derive(Debug, Clone)]
pub struct RolloutDecoder {
    init: Mlp,
    embed: Linear,
    cell: LstmCell,
    head: Linear,
    ctx_dim: usize,
}

impl RolloutDecoder {
    /// `ctx_dim` is the width of the conditioning vector the backbone
    /// assembles (`[h | P | cond | extra]`).
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        name: &str,
        cfg: &BackboneConfig,
        ctx_dim: usize,
    ) -> Self {
        Self {
            init: Mlp::new(
                store,
                rng,
                &format!("{name}.init"),
                &[ctx_dim, cfg.dec_hidden],
                Activation::Tanh,
                BACKBONE_GROUP,
            )
            .with_output_activation(),
            embed: Linear::new(
                store,
                rng,
                &format!("{name}.demb"),
                2,
                cfg.embed_dim,
                BACKBONE_GROUP,
            ),
            cell: LstmCell::new(
                store,
                rng,
                &format!("{name}.dec"),
                cfg.embed_dim + ctx_dim,
                cfg.dec_hidden,
                BACKBONE_GROUP,
            ),
            head: Linear::new(
                store,
                rng,
                &format!("{name}.head"),
                cfg.dec_hidden,
                2,
                BACKBONE_GROUP,
            ),
            ctx_dim,
        }
    }

    pub fn ctx_dim(&self) -> usize {
        self.ctx_dim
    }

    /// Rolls out [`T_PRED`] steps starting at the origin (the focal agent's
    /// last observed position in the normalized frame). Returns predicted
    /// positions `[T_PRED, 2]`.
    pub fn rollout(&self, store: &ParamStore, tape: &mut Tape, ctx: Var) -> Var {
        debug_assert_eq!(tape.value(ctx).shape(), (1, self.ctx_dim));
        // Eqs. 4–5: initialize the decoder state from the context.
        let h0 = self.init.forward(store, tape, ctx);
        let c0 = tape.constant(Tensor::zeros(1, tape.value(h0).cols()));
        let mut state = LstmState { h: h0, c: c0 };

        // Eqs. 6–7: autoregressive rollout emitting displacements.
        let mut pos = tape.constant(Tensor::zeros(1, 2));
        let mut outputs = Vec::with_capacity(T_PRED);
        for _ in 0..T_PRED {
            let e = self.embed.forward_act(store, tape, pos, FusedAct::Relu);
            let x = tape.concat_cols(&[e, ctx]);
            state = self.cell.step(store, tape, x, state);
            let delta = self.head.forward(store, tape, state.h);
            pos = tape.add(pos, delta);
            outputs.push(pos);
        }
        tape.concat_rows(&outputs)
    }
}

/// `L_base` (Eq. 8): summed squared error between predicted and true
/// future positions, averaged over the horizon so losses are comparable
/// across windows.
pub fn base_loss(tape: &mut Tape, pred: Var, w: &TrajWindow) -> Var {
    let target = future_tensor(w);
    let sse = tape.sse_to(pred, &target);
    tape.scale(sse, 1.0 / T_PRED as f32)
}

/// Ground-truth future as a `[T_PRED, 2]` tensor.
pub fn future_tensor(w: &TrajWindow) -> Tensor {
    let mut data = Vec::with_capacity(T_PRED * 2);
    for p in &w.fut {
        data.extend_from_slice(p);
    }
    Tensor::from_vec(T_PRED, 2, data)
}

/// Flattened observed focal track `[1, T_OBS·2]` (used by CVAE encoders).
pub fn obs_flat_tensor(w: &TrajWindow) -> Tensor {
    let mut data = Vec::with_capacity(T_OBS * 2);
    for p in &w.obs {
        data.extend_from_slice(p);
    }
    Tensor::from_vec(1, T_OBS * 2, data)
}

/// Flattened future focal track `[1, T_PRED·2]`.
pub fn fut_flat_tensor(w: &TrajWindow) -> Tensor {
    let mut data = Vec::with_capacity(T_PRED * 2);
    for p in &w.fut {
        data.extend_from_slice(p);
    }
    Tensor::from_vec(1, T_PRED * 2, data)
}

/// Converts a `[T_PRED, 2]` prediction tensor into points.
pub fn tensor_to_points(t: &Tensor) -> Vec<Point> {
    assert_eq!(t.cols(), 2);
    (0..t.rows()).map(|r| [t.at(r, 0), t.at(r, 1)]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptraj_data::domain::DomainId;
    use adaptraj_data::trajectory::T_TOTAL;

    fn toy_window(neighbors: usize) -> TrajWindow {
        let focal: Vec<Point> = (0..T_TOTAL).map(|t| [0.3 * t as f32, 0.0]).collect();
        let nb: Vec<Vec<Point>> = (0..neighbors)
            .map(|k| {
                (0..T_OBS)
                    .map(|t| [0.3 * t as f32, 1.0 + k as f32])
                    .collect()
            })
            .collect();
        TrajWindow::from_world(&focal, &nb, DomainId::EthUcy)
    }

    fn setup(kind: InteractionKind) -> (ParamStore, SceneEncoder, BackboneConfig) {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(0);
        let cfg = BackboneConfig::default();
        let enc = SceneEncoder::new(&mut store, &mut rng, "b", &cfg, kind);
        (store, enc, cfg)
    }

    #[test]
    fn encode_shapes() {
        for kind in [InteractionKind::Attention, InteractionKind::MeanPool] {
            let (store, enc, cfg) = setup(kind);
            let w = toy_window(3);
            let mut tape = Tape::new();
            let scene = enc.encode(&store, &mut tape, &w);
            assert_eq!(tape.value(scene.h_focal).shape(), (1, cfg.hidden_dim));
            assert_eq!(tape.value(scene.p_i).shape(), (1, cfg.inter_dim));
        }
    }

    #[test]
    fn encode_works_with_zero_neighbors() {
        let (store, enc, _) = setup(InteractionKind::Attention);
        let w = toy_window(0);
        let mut tape = Tape::new();
        let scene = enc.encode(&store, &mut tape, &w);
        assert!(tape.value(scene.p_i).all_finite());
    }

    #[test]
    fn neighbors_change_interaction_tensor() {
        let (store, enc, _) = setup(InteractionKind::Attention);
        let mut t1 = Tape::new();
        let s1 = enc.encode(&store, &mut t1, &toy_window(0));
        let mut t2 = Tape::new();
        let s2 = enc.encode(&store, &mut t2, &toy_window(3));
        assert_ne!(
            t1.value(s1.p_i).data(),
            t2.value(s2.p_i).data(),
            "interaction tensor must be neighbor-sensitive"
        );
        // The focal agent's own encoding is unaffected by neighbors.
        assert_eq!(t1.value(s1.h_focal).data(), t2.value(s2.h_focal).data());
    }

    #[test]
    fn rollout_shape_and_continuity() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(1);
        let cfg = BackboneConfig::default();
        let dec = RolloutDecoder::new(&mut store, &mut rng, "d", &cfg, 10);
        let mut tape = Tape::new();
        let ctx = tape.constant(Tensor::randn(1, 10, 0.0, 1.0, &mut rng));
        let pred = dec.rollout(&store, &mut tape, ctx);
        assert_eq!(tape.value(pred).shape(), (T_PRED, 2));
        // Rollout is cumulative: consecutive rows differ by one decoder
        // step, so the first position is a single displacement from origin.
        assert!(tape.value(pred).all_finite());
    }

    #[test]
    fn base_loss_zero_on_perfect_prediction() {
        let w = toy_window(0);
        let mut tape = Tape::new();
        let pred = tape.input(future_tensor(&w));
        let loss = base_loss(&mut tape, pred, &w);
        assert!(tape.value(loss).item() < 1e-9);
    }

    #[test]
    fn flat_tensors_shapes() {
        let w = toy_window(1);
        assert_eq!(obs_flat_tensor(&w).shape(), (1, T_OBS * 2));
        assert_eq!(fut_flat_tensor(&w).shape(), (1, T_PRED * 2));
        assert_eq!(future_tensor(&w).shape(), (T_PRED, 2));
        let pts = tensor_to_points(&future_tensor(&w));
        assert_eq!(pts.len(), T_PRED);
        assert_eq!(pts[0], w.fut[0]);
    }

    #[test]
    fn transformer_encoder_variant_works() {
        use crate::config::EncoderKind;
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(11);
        let cfg = BackboneConfig::default().with_encoder(EncoderKind::Transformer);
        let enc = SceneEncoder::new(&mut store, &mut rng, "t", &cfg, InteractionKind::Attention);
        let w = toy_window(2);
        let mut tape = Tape::new();
        let scene = enc.encode(&store, &mut tape, &w);
        assert_eq!(tape.value(scene.h_focal).shape(), (1, cfg.hidden_dim));
        assert_eq!(tape.value(scene.p_i).shape(), (1, cfg.inter_dim));
        assert!(tape.value(scene.h_focal).all_finite());
        // Gradients reach the transformer parameters.
        let sq = tape.mul(scene.h_focal, scene.h_focal);
        let loss = tape.sum_all(sq);
        let grads = tape.backward(loss);
        assert!(!tape.param_grads(&grads).is_empty());
    }

    #[test]
    fn lstm_and_transformer_encoders_differ() {
        use crate::config::EncoderKind;
        let w = toy_window(1);
        let encode_with = |kind: EncoderKind| {
            let mut store = ParamStore::new();
            let mut rng = Rng::seed_from(3);
            let cfg = BackboneConfig::default().with_encoder(kind);
            let enc = SceneEncoder::new(&mut store, &mut rng, "e", &cfg, InteractionKind::MeanPool);
            let mut tape = Tape::new();
            let scene = enc.encode(&store, &mut tape, &w);
            tape.value(scene.h_focal).clone()
        };
        assert_ne!(
            encode_with(EncoderKind::Lstm).data(),
            encode_with(EncoderKind::Transformer).data()
        );
    }

    #[test]
    fn rollout_gradients_reach_decoder_params() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(2);
        let cfg = BackboneConfig::default();
        let dec = RolloutDecoder::new(&mut store, &mut rng, "d", &cfg, 8);
        let w = toy_window(0);
        let mut tape = Tape::new();
        let ctx = tape.constant(Tensor::randn(1, 8, 0.0, 1.0, &mut rng));
        let pred = dec.rollout(&store, &mut tape, ctx);
        let loss = base_loss(&mut tape, pred, &w);
        let grads = tape.backward(loss);
        let pgrads = tape.param_grads(&grads);
        assert!(!pgrads.is_empty(), "decoder params got no gradients");
        assert!(pgrads.iter().all(|(_, g)| g.all_finite()));
    }
}
