//! The shared seq2seq backbone skeleton (Fig. 1 of the paper), batched.
//!
//! Three stages:
//! 1. **Individual mobility layer** — MLP location embedding (Eq. 1) fed to
//!    an LSTM or Transformer encoder (Eq. 2; the paper names both) over
//!    every agent in the window.
//! 2. **Neighbor interaction layer** — an aggregation `φ` over all agents'
//!    final hidden states producing the interaction tensor `P_i` (Eq. 3);
//!    both the attention (PECNet-style non-local) and mean-pooling
//!    (Social-LSTM-style) variants are provided.
//! 3. **Future trajectory generator** — decoder state initialized from
//!    `γ(P_i, h_i)` and a latent `z` (Eqs. 4–5), then an autoregressive
//!    LSTM rollout emitting per-step displacements (Eqs. 6–7).
//!
//! Every stage operates on a [`WindowBatch`]: agents of all windows are
//! stacked row-wise (the batch layout contract), so one pass issues one
//! batched matmul/LSTM-step per layer instead of one per window. Ragged
//! per-window agent counts are handled with a padded `[B·A_max]` slot
//! grid: pad slots re-gather the window's focal row and are masked to
//! exact zeros (an additive [`PAD_BIAS`] softmax bias, or a `0/1`
//! mean-pool mask), so a padded slot provably contributes zero value *and* zero
//! gradient — see the padded-slot property tests in `adaptraj-check`.
//!
//! The concrete backbones (PECNet, LBEBM) compose these parts and differ
//! in how `z` is produced and which auxiliary losses they add.

use crate::config::{BackboneConfig, EncoderKind};
use adaptraj_data::trajectory::{Point, TrajWindow, T_OBS, T_PRED};
use adaptraj_data::WindowBatch;
use adaptraj_tensor::nn::{Activation, Linear, Lstm, LstmCell, LstmState, Mlp, TransformerEncoder};
use adaptraj_tensor::{FusedAct, GroupId, ParamStore, Rng, Tape, Tensor, Var};

/// Parameter group for all backbone weights (the AdapTraj schedule
/// addresses modules by group).
pub const BACKBONE_GROUP: GroupId = GroupId(0);

/// Additive attention bias at padded slots. A pad slot re-gathers the
/// focal row, so its raw score never exceeds the row max; after the
/// row-max subtraction inside the softmax the pad exponent is at most
/// `−1e5`, and `exp(−1e5)` underflows to exactly `0.0` in f32 (anything
/// below ≈ `−104` does). Pad weights — and through `y ⊙ (g − y·g)`
/// their gradients — are therefore exact zeros, not merely small. The
/// magnitude is kept under the health tripwire's 1e6 explosion
/// threshold so a masked clean run records zero incidents.
pub const PAD_BIAS: f32 = -1e5;

/// Output of the encoding stages, on a tape.
#[derive(Debug, Clone, Copy)]
pub struct EncodedScene {
    /// Focal agents' individual-mobility states `h_ei` — `[B, hidden]`,
    /// one row per window in batch order.
    pub h_focal: Var,
    /// Interaction tensors `P_i` — `[B, inter]`.
    pub p_i: Var,
}

/// Which `φ` aggregates the neighbors (Eq. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InteractionKind {
    /// Scaled dot-product attention with the focal agent as the query
    /// (non-local social layer, as in PECNet).
    Attention,
    /// Mean pooling of projected hidden states (Social-LSTM style).
    MeanPool,
}

/// The sequence model behind the individual-mobility encoder (Eq. 2).
#[derive(Debug, Clone)]
enum MobilityEncoder {
    Lstm(Lstm),
    Transformer(TransformerEncoder),
}

/// Per-slot gather indices and validity flags for the padded `[B·A_max]`
/// slot grid, in slot order (window-major). Pad slots re-gather the
/// window's focal row — a real row, so shapes stay rectangular — and rely
/// on downstream masking to zero their contribution exactly.
pub fn padded_slots(batch: &WindowBatch<'_>) -> (Vec<usize>, Vec<bool>) {
    let a_max = batch.max_agents();
    let mut slots = Vec::with_capacity(batch.len() * a_max);
    let mut valid = Vec::with_capacity(batch.len() * a_max);
    for (i, w) in batch.windows().iter().enumerate() {
        let off = batch.agent_offset(i);
        for j in 0..a_max {
            let ok = j < w.agents();
            slots.push(off + if ok { j } else { 0 });
            valid.push(ok);
        }
    }
    (slots, valid)
}

/// Stages 1–2: embedding, encoder, and interaction layer.
#[derive(Debug, Clone)]
pub struct SceneEncoder {
    embed: Linear,
    encoder: MobilityEncoder,
    kind: InteractionKind,
    w_q: Linear,
    w_k: Linear,
    w_v: Linear,
    hidden_dim: usize,
    inter_dim: usize,
}

impl SceneEncoder {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        name: &str,
        cfg: &BackboneConfig,
        kind: InteractionKind,
    ) -> Self {
        Self {
            embed: Linear::new(
                store,
                rng,
                &format!("{name}.embed"),
                2,
                cfg.embed_dim,
                BACKBONE_GROUP,
            ),
            encoder: match cfg.encoder {
                EncoderKind::Lstm => MobilityEncoder::Lstm(Lstm::new(
                    store,
                    rng,
                    &format!("{name}.enc"),
                    cfg.embed_dim,
                    cfg.hidden_dim,
                    BACKBONE_GROUP,
                )),
                EncoderKind::Transformer => MobilityEncoder::Transformer(TransformerEncoder::new(
                    store,
                    rng,
                    &format!("{name}.enc"),
                    cfg.embed_dim,
                    cfg.hidden_dim,
                    1,
                    BACKBONE_GROUP,
                )),
            },
            w_q: Linear::new(
                store,
                rng,
                &format!("{name}.wq"),
                cfg.hidden_dim,
                cfg.inter_dim,
                BACKBONE_GROUP,
            ),
            w_k: Linear::new(
                store,
                rng,
                &format!("{name}.wk"),
                cfg.hidden_dim,
                cfg.inter_dim,
                BACKBONE_GROUP,
            ),
            w_v: Linear::new(
                store,
                rng,
                &format!("{name}.wv"),
                cfg.hidden_dim,
                cfg.inter_dim,
                BACKBONE_GROUP,
            ),
            kind,
            hidden_dim: cfg.hidden_dim,
            inter_dim: cfg.inter_dim,
        }
    }

    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    pub fn inter_dim(&self) -> usize {
        self.inter_dim
    }

    /// Stacks one agent's observed track as a `[T_OBS, 2]` tensor.
    fn agent_track(w: &TrajWindow, agent: usize) -> Tensor {
        let track = if agent == 0 {
            &w.obs
        } else {
            &w.neighbors[agent - 1]
        };
        let mut data = Vec::with_capacity(T_OBS * 2);
        for p in track {
            data.extend_from_slice(p);
        }
        Tensor::from_vec(T_OBS, 2, data)
    }

    /// Encodes a window batch: every agent of every window through
    /// Eq. 1–2 jointly (stacked agents are batch rows), then `φ` (Eq. 3)
    /// over the padded slot grid.
    pub fn encode(
        &self,
        store: &ParamStore,
        tape: &mut Tape,
        batch: &WindowBatch<'_>,
    ) -> EncodedScene {
        let h_all = match &self.encoder {
            // Eq. 1–2 over all agents of all windows jointly.
            MobilityEncoder::Lstm(lstm) => {
                let mut steps = Vec::with_capacity(T_OBS);
                for t in 0..T_OBS {
                    let pos = tape.constant(batch_step_positions(batch, t));
                    steps.push(self.embed.forward_act(store, tape, pos, FusedAct::Relu));
                }
                let (_, final_state) = lstm.forward(store, tape, &steps);
                final_state.h // [N_total, hidden]
            }
            // Per-agent sequences through the attention encoder, in
            // stacked-row order.
            MobilityEncoder::Transformer(trf) => {
                let mut rows = Vec::with_capacity(batch.total_agents());
                for w in batch.windows() {
                    for a in 0..w.agents() {
                        let seq = tape.constant(Self::agent_track(w, a));
                        let e = self.embed.forward_act(store, tape, seq, FusedAct::Relu);
                        rows.push(trf.encode_sequence(store, tape, e));
                    }
                }
                tape.concat_rows(&rows) // [N_total, hidden]
            }
        };
        let h_focal = tape.gather_rows(h_all, &batch.focal_rows()); // [B, hidden]

        // Single-window fast path: no padding can exist, so Eq. 3
        // collapses to the direct attention/mean over all agent rows —
        // the same values as the slot-grid formulation below with ~8
        // fewer tape nodes. This is the per-window inference hot path.
        if batch.len() == 1 {
            let p_i = match self.kind {
                InteractionKind::Attention => {
                    let q = self.w_q.forward(store, tape, h_focal); // [1, d]
                    let k = self.w_k.forward(store, tape, h_all); // [N, d]
                    let v = self.w_v.forward(store, tape, h_all); // [N, d]
                    let scores = tape.matmul_nt(q, k); // [1, N], q·kᵀ untransposed
                    let scaled = tape.scale(scores, 1.0 / (self.inter_dim as f32).sqrt());
                    let attn = tape.softmax_rows(scaled);
                    tape.matmul(attn, v) // [1, d]
                }
                InteractionKind::MeanPool => {
                    let act = self.w_v.forward_act(store, tape, h_all, FusedAct::Relu);
                    tape.mean_rows(act)
                }
            };
            return EncodedScene { h_focal, p_i };
        }

        // Eq. 3 over the padded `[B·A_max]` slot grid.
        let b = batch.len();
        let a_max = batch.max_agents();
        let d = self.inter_dim;
        let (slots, valid) = padded_slots(batch);
        let fully_packed = valid.iter().all(|&ok| ok);
        let p_i = match self.kind {
            InteractionKind::Attention => {
                let q = self.w_q.forward(store, tape, h_focal); // [B, d]
                let k = self.w_k.forward(store, tape, h_all); // [N, d]
                let v = self.w_v.forward(store, tape, h_all); // [N, d]
                                                              // Fully packed batches have identity slot maps: the
                                                              // stacked rows already ARE the slot grid.
                let kp = if fully_packed {
                    k
                } else {
                    tape.gather_rows(k, &slots) // [B·A_max, d]
                };
                let vp = if fully_packed {
                    v
                } else {
                    tape.gather_rows(v, &slots)
                };
                let q_idx: Vec<usize> =
                    (0..b).flat_map(|i| std::iter::repeat_n(i, a_max)).collect();
                let qp = tape.gather_rows(q, &q_idx); // [B·A_max, d]
                                                      // Per-slot q·k dots: elementwise product, then a row sum.
                let prod = tape.mul(qp, kp);
                let ones_col = tape.constant(Tensor::ones(d, 1));
                let scores_col = tape.matmul(prod, ones_col); // [B·A_max, 1]
                let scores = tape.reshape(scores_col, b, a_max);
                let scaled = tape.scale(scores, 1.0 / (d as f32).sqrt());
                // Pad slots get an additive PAD_BIAS: their softmax
                // weight underflows to exactly 0.0 (see [`PAD_BIAS`]).
                let biased = if fully_packed {
                    scaled
                } else {
                    let bias: Vec<f32> = valid
                        .iter()
                        .map(|&ok| if ok { 0.0 } else { PAD_BIAS })
                        .collect();
                    let bt = tape.constant(Tensor::from_vec(b, a_max, bias));
                    tape.add(scaled, bt)
                };
                let attn = tape.softmax_rows(biased); // [B, A_max]
                                                      // Broadcast weights over the feature dim and reduce each
                                                      // window's slot group.
                let attn_col = tape.reshape(attn, b * a_max, 1);
                let ones_row = tape.constant(Tensor::ones(1, d));
                let attn_b = tape.matmul(attn_col, ones_row); // [B·A_max, d]
                let weighted = tape.mul(attn_b, vp);
                tape.sum_row_groups(weighted, a_max) // [B, d]
            }
            InteractionKind::MeanPool => {
                let act = self.w_v.forward_act(store, tape, h_all, FusedAct::Relu); // [N, d]
                let masked = if fully_packed {
                    act // identity slot map, no padding to mask
                } else {
                    let ap = tape.gather_rows(act, &slots); // [B·A_max, d]
                    let mut mask = Vec::with_capacity(b * a_max * d);
                    for &ok in &valid {
                        let m = if ok { 1.0 } else { 0.0 };
                        mask.extend(std::iter::repeat_n(m, d));
                    }
                    tape.hadamard_const(ap, Tensor::from_vec(b * a_max, d, mask))
                };
                let sums = tape.sum_row_groups(masked, a_max); // [B, d]
                                                               // Divide each window's slot sum by its true agent count.
                let mut inv = Vec::with_capacity(b * d);
                for w in batch.windows() {
                    inv.extend(std::iter::repeat_n(1.0 / w.agents() as f32, d));
                }
                tape.hadamard_const(sums, Tensor::from_vec(b, d, inv))
            }
        };
        EncodedScene { h_focal, p_i }
    }
}

/// Stage 3: the autoregressive future-trajectory generator.
#[derive(Debug, Clone)]
pub struct RolloutDecoder {
    init: Mlp,
    embed: Linear,
    cell: LstmCell,
    head: Linear,
    ctx_dim: usize,
}

impl RolloutDecoder {
    /// `ctx_dim` is the width of the conditioning vector the backbone
    /// assembles (`[h | P | cond | extra]`).
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        name: &str,
        cfg: &BackboneConfig,
        ctx_dim: usize,
    ) -> Self {
        Self {
            init: Mlp::new(
                store,
                rng,
                &format!("{name}.init"),
                &[ctx_dim, cfg.dec_hidden],
                Activation::Tanh,
                BACKBONE_GROUP,
            )
            .with_output_activation(),
            embed: Linear::new(
                store,
                rng,
                &format!("{name}.demb"),
                2,
                cfg.embed_dim,
                BACKBONE_GROUP,
            ),
            cell: LstmCell::new(
                store,
                rng,
                &format!("{name}.dec"),
                cfg.embed_dim + ctx_dim,
                cfg.dec_hidden,
                BACKBONE_GROUP,
            ),
            head: Linear::new(
                store,
                rng,
                &format!("{name}.head"),
                cfg.dec_hidden,
                2,
                BACKBONE_GROUP,
            ),
            ctx_dim,
        }
    }

    pub fn ctx_dim(&self) -> usize {
        self.ctx_dim
    }

    /// Rolls out [`T_PRED`] steps for every window at once, starting at
    /// the origin (each focal agent's last observed position in its
    /// normalized frame). `ctx` is `[B, ctx_dim]`; returns predicted
    /// positions `[T_PRED·B, 2]`, time-major (window `b` at step `t` is
    /// row `t·B + b`).
    pub fn rollout(&self, store: &ParamStore, tape: &mut Tape, ctx: Var) -> Var {
        let b = tape.value(ctx).rows();
        debug_assert_eq!(tape.value(ctx).cols(), self.ctx_dim);
        // Eqs. 4–5: initialize the decoder states from the contexts.
        let h0 = self.init.forward(store, tape, ctx);
        let c0 = tape.constant(Tensor::zeros(b, tape.value(h0).cols()));
        let mut state = LstmState { h: h0, c: c0 };

        // Eqs. 6–7: autoregressive rollout emitting displacements.
        let mut pos = tape.constant(Tensor::zeros(b, 2));
        let mut outputs = Vec::with_capacity(T_PRED);
        for _ in 0..T_PRED {
            let e = self.embed.forward_act(store, tape, pos, FusedAct::Relu);
            let x = tape.concat_cols(&[e, ctx]);
            state = self.cell.step(store, tape, x, state);
            let delta = self.head.forward(store, tape, state.h);
            pos = tape.add(pos, delta);
            outputs.push(pos);
        }
        tape.concat_rows(&outputs)
    }
}

/// `L_base` (Eq. 8): summed squared error between predicted and true
/// future positions, averaged over the horizon *and* the batch so the
/// job loss is the mean of the per-window losses.
pub fn base_loss(tape: &mut Tape, pred: Var, batch: &WindowBatch<'_>) -> Var {
    let target = batch_future_tensor(batch);
    let sse = tape.sse_to(pred, &target);
    tape.scale(sse, 1.0 / (T_PRED * batch.len()) as f32)
}

/// Stacks all agents' positions at observation step `t` into an
/// `[N_total, 2]` tensor following the batch layout contract (each
/// window's focal agent first, then its neighbors).
pub fn batch_step_positions(batch: &WindowBatch<'_>, t: usize) -> Tensor {
    let n = batch.total_agents();
    let mut data = Vec::with_capacity(n * 2);
    for w in batch.windows() {
        data.extend_from_slice(&w.obs[t]);
        for nb in &w.neighbors {
            data.extend_from_slice(&nb[t]);
        }
    }
    Tensor::from_vec(n, 2, data)
}

/// Ground-truth futures as a `[T_PRED·B, 2]` tensor in the rollout's
/// time-major layout (window `b` at step `t` is row `t·B + b`).
pub fn batch_future_tensor(batch: &WindowBatch<'_>) -> Tensor {
    let b = batch.len();
    let mut data = vec![0.0f32; T_PRED * b * 2];
    for (i, w) in batch.windows().iter().enumerate() {
        for (t, p) in w.fut.iter().enumerate() {
            let r = t * b + i;
            data[r * 2] = p[0];
            data[r * 2 + 1] = p[1];
        }
    }
    Tensor::from_vec(T_PRED * b, 2, data)
}

/// Flattened observed focal tracks `[B, T_OBS·2]` (used by CVAE encoders
/// and the reconstruction loss).
pub fn batch_obs_flat_tensor(batch: &WindowBatch<'_>) -> Tensor {
    let mut data = Vec::with_capacity(batch.len() * T_OBS * 2);
    for w in batch.windows() {
        for p in &w.obs {
            data.extend_from_slice(p);
        }
    }
    Tensor::from_vec(batch.len(), T_OBS * 2, data)
}

/// Flattened future focal tracks `[B, T_PRED·2]`.
pub fn batch_fut_flat_tensor(batch: &WindowBatch<'_>) -> Tensor {
    let mut data = Vec::with_capacity(batch.len() * T_PRED * 2);
    for w in batch.windows() {
        for p in &w.fut {
            data.extend_from_slice(p);
        }
    }
    Tensor::from_vec(batch.len(), T_PRED * 2, data)
}

/// Ground-truth endpoints `[B, 2]` (the CVAE target of PECNet).
pub fn batch_endpoint_tensor(batch: &WindowBatch<'_>) -> Tensor {
    let mut data = Vec::with_capacity(batch.len() * 2);
    for w in batch.windows() {
        data.extend_from_slice(w.fut.last().expect("future non-empty"));
    }
    Tensor::from_vec(batch.len(), 2, data)
}

/// Converts a batch-of-one `[T_PRED, 2]` prediction tensor into points.
pub fn tensor_to_points(t: &Tensor) -> Vec<Point> {
    assert_eq!(t.cols(), 2);
    (0..t.rows()).map(|r| [t.at(r, 0), t.at(r, 1)]).collect()
}

/// Unstacks a time-major `[T_PRED·B, 2]` prediction into per-window
/// tracks, in batch order.
pub fn batch_pred_points(t: &Tensor, b: usize) -> Vec<Vec<Point>> {
    assert_eq!(t.cols(), 2);
    assert_eq!(t.rows() % b, 0, "prediction rows must split over the batch");
    let steps = t.rows() / b;
    (0..b)
        .map(|i| {
            (0..steps)
                .map(|s| {
                    let r = s * b + i;
                    [t.at(r, 0), t.at(r, 1)]
                })
                .collect()
        })
        .collect()
}

/// Ground-truth future of one window as a `[T_PRED, 2]` tensor.
pub fn future_tensor(w: &TrajWindow) -> Tensor {
    let mut data = Vec::with_capacity(T_PRED * 2);
    for p in &w.fut {
        data.extend_from_slice(p);
    }
    Tensor::from_vec(T_PRED, 2, data)
}

/// Flattened observed focal track `[1, T_OBS·2]` of one window.
pub fn obs_flat_tensor(w: &TrajWindow) -> Tensor {
    let mut data = Vec::with_capacity(T_OBS * 2);
    for p in &w.obs {
        data.extend_from_slice(p);
    }
    Tensor::from_vec(1, T_OBS * 2, data)
}

/// Flattened future focal track `[1, T_PRED·2]` of one window.
pub fn fut_flat_tensor(w: &TrajWindow) -> Tensor {
    let mut data = Vec::with_capacity(T_PRED * 2);
    for p in &w.fut {
        data.extend_from_slice(p);
    }
    Tensor::from_vec(1, T_PRED * 2, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptraj_data::domain::DomainId;
    use adaptraj_data::trajectory::T_TOTAL;

    fn toy_window(neighbors: usize) -> TrajWindow {
        let focal: Vec<Point> = (0..T_TOTAL).map(|t| [0.3 * t as f32, 0.0]).collect();
        let nb: Vec<Vec<Point>> = (0..neighbors)
            .map(|k| {
                (0..T_OBS)
                    .map(|t| [0.3 * t as f32, 1.0 + k as f32])
                    .collect()
            })
            .collect();
        TrajWindow::from_world(&focal, &nb, DomainId::EthUcy)
    }

    fn setup(kind: InteractionKind) -> (ParamStore, SceneEncoder, BackboneConfig) {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(0);
        let cfg = BackboneConfig::default();
        let enc = SceneEncoder::new(&mut store, &mut rng, "b", &cfg, kind);
        (store, enc, cfg)
    }

    #[test]
    fn encode_shapes_batched() {
        for kind in [InteractionKind::Attention, InteractionKind::MeanPool] {
            let (store, enc, cfg) = setup(kind);
            let ws = [toy_window(3), toy_window(0), toy_window(1)];
            let batch = WindowBatch::new(ws.iter().collect(), vec![0, 1, 2]);
            let mut tape = Tape::new();
            let scene = enc.encode(&store, &mut tape, &batch);
            assert_eq!(tape.value(scene.h_focal).shape(), (3, cfg.hidden_dim));
            assert_eq!(tape.value(scene.p_i).shape(), (3, cfg.inter_dim));
            assert!(tape.value(scene.p_i).all_finite());
        }
    }

    #[test]
    fn batched_encode_matches_per_window_encode() {
        // The ragged batch must reproduce each window's batch-of-one
        // encoding: padding is masked to exact zeros, so stacking cannot
        // change any window's numbers beyond float re-association.
        for kind in [InteractionKind::Attention, InteractionKind::MeanPool] {
            let (store, enc, _) = setup(kind);
            let ws = [toy_window(4), toy_window(0), toy_window(2)];
            let batch = WindowBatch::new(ws.iter().collect(), vec![0, 1, 2]);
            let mut tape = Tape::new();
            let scene = enc.encode(&store, &mut tape, &batch);
            let stacked_h = tape.value(scene.h_focal).clone();
            let stacked_p = tape.value(scene.p_i).clone();
            for (i, w) in ws.iter().enumerate() {
                let single = WindowBatch::single(w, 0);
                let mut t1 = Tape::new();
                let s1 = enc.encode(&store, &mut t1, &single);
                let h1 = t1.value(s1.h_focal);
                let p1 = t1.value(s1.p_i);
                for c in 0..h1.cols() {
                    assert!(
                        (stacked_h.at(i, c) - h1.at(0, c)).abs() < 1e-5,
                        "h_focal row {i} col {c} diverged"
                    );
                }
                for c in 0..p1.cols() {
                    assert!(
                        (stacked_p.at(i, c) - p1.at(0, c)).abs() < 1e-5,
                        "p_i row {i} col {c} diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn encode_works_with_zero_neighbors() {
        let (store, enc, _) = setup(InteractionKind::Attention);
        let w = toy_window(0);
        let batch = WindowBatch::single(&w, 0);
        let mut tape = Tape::new();
        let scene = enc.encode(&store, &mut tape, &batch);
        assert!(tape.value(scene.p_i).all_finite());
    }

    #[test]
    fn neighbors_change_interaction_tensor() {
        let (store, enc, _) = setup(InteractionKind::Attention);
        let w0 = toy_window(0);
        let w3 = toy_window(3);
        let mut t1 = Tape::new();
        let s1 = enc.encode(&store, &mut t1, &WindowBatch::single(&w0, 0));
        let mut t2 = Tape::new();
        let s2 = enc.encode(&store, &mut t2, &WindowBatch::single(&w3, 0));
        assert_ne!(
            t1.value(s1.p_i).data(),
            t2.value(s2.p_i).data(),
            "interaction tensor must be neighbor-sensitive"
        );
        // The focal agent's own encoding is unaffected by neighbors.
        assert_eq!(t1.value(s1.h_focal).data(), t2.value(s2.h_focal).data());
    }

    #[test]
    fn padded_slots_layout() {
        let ws = [toy_window(2), toy_window(0)];
        let batch = WindowBatch::new(ws.iter().collect(), vec![0, 1]);
        let (slots, valid) = padded_slots(&batch);
        // A_max = 3; window 0 has agents {0,1,2}, window 1 only {3}.
        assert_eq!(slots, vec![0, 1, 2, 3, 3, 3]);
        assert_eq!(valid, vec![true, true, true, true, false, false]);
    }

    #[test]
    fn rollout_shape_and_continuity() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(1);
        let cfg = BackboneConfig::default();
        let dec = RolloutDecoder::new(&mut store, &mut rng, "d", &cfg, 10);
        let mut tape = Tape::new();
        let ctx = tape.constant(Tensor::randn(3, 10, 0.0, 1.0, &mut rng));
        let pred = dec.rollout(&store, &mut tape, ctx);
        assert_eq!(tape.value(pred).shape(), (T_PRED * 3, 2));
        assert!(tape.value(pred).all_finite());
    }

    #[test]
    fn base_loss_zero_on_perfect_prediction() {
        let w = toy_window(0);
        let batch = WindowBatch::single(&w, 0);
        let mut tape = Tape::new();
        let pred = tape.input(batch_future_tensor(&batch));
        let loss = base_loss(&mut tape, pred, &batch);
        assert!(tape.value(loss).item() < 1e-9);
    }

    #[test]
    fn flat_tensors_shapes() {
        let ws = [toy_window(1), toy_window(0)];
        let batch = WindowBatch::new(ws.iter().collect(), vec![0, 1]);
        assert_eq!(batch_obs_flat_tensor(&batch).shape(), (2, T_OBS * 2));
        assert_eq!(batch_fut_flat_tensor(&batch).shape(), (2, T_PRED * 2));
        assert_eq!(batch_future_tensor(&batch).shape(), (T_PRED * 2, 2));
        assert_eq!(batch_endpoint_tensor(&batch).shape(), (2, 2));
        // Time-major layout: step t of window i sits at row t·B + i.
        let fut = batch_future_tensor(&batch);
        assert_eq!([fut.at(2, 0), fut.at(2, 1)], ws[0].fut[1]);
        assert_eq!([fut.at(3, 0), fut.at(3, 1)], ws[1].fut[1]);
        // And unstacks back to per-window tracks.
        let tracks = batch_pred_points(&fut, 2);
        assert_eq!(tracks[0], ws[0].fut);
        assert_eq!(tracks[1], ws[1].fut);
        // Batch-of-one helpers agree with the per-window builders.
        let single = WindowBatch::single(&ws[0], 0);
        assert_eq!(
            batch_obs_flat_tensor(&single).data(),
            obs_flat_tensor(&ws[0]).data()
        );
        assert_eq!(
            batch_fut_flat_tensor(&single).data(),
            fut_flat_tensor(&ws[0]).data()
        );
        assert_eq!(
            batch_future_tensor(&single).data(),
            future_tensor(&ws[0]).data()
        );
        let pts = tensor_to_points(&future_tensor(&ws[0]));
        assert_eq!(pts.len(), T_PRED);
        assert_eq!(pts[0], ws[0].fut[0]);
    }

    #[test]
    fn transformer_encoder_variant_works() {
        use crate::config::EncoderKind;
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(11);
        let cfg = BackboneConfig::default().with_encoder(EncoderKind::Transformer);
        let enc = SceneEncoder::new(&mut store, &mut rng, "t", &cfg, InteractionKind::Attention);
        let ws = [toy_window(2), toy_window(1)];
        let batch = WindowBatch::new(ws.iter().collect(), vec![0, 1]);
        let mut tape = Tape::new();
        let scene = enc.encode(&store, &mut tape, &batch);
        assert_eq!(tape.value(scene.h_focal).shape(), (2, cfg.hidden_dim));
        assert_eq!(tape.value(scene.p_i).shape(), (2, cfg.inter_dim));
        assert!(tape.value(scene.h_focal).all_finite());
        // Gradients reach the transformer parameters.
        let sq = tape.mul(scene.h_focal, scene.h_focal);
        let loss = tape.sum_all(sq);
        let grads = tape.backward(loss);
        assert!(!tape.param_grads(&grads).is_empty());
    }

    #[test]
    fn lstm_and_transformer_encoders_differ() {
        use crate::config::EncoderKind;
        let w = toy_window(1);
        let encode_with = |kind: EncoderKind| {
            let mut store = ParamStore::new();
            let mut rng = Rng::seed_from(3);
            let cfg = BackboneConfig::default().with_encoder(kind);
            let enc = SceneEncoder::new(&mut store, &mut rng, "e", &cfg, InteractionKind::MeanPool);
            let mut tape = Tape::new();
            let scene = enc.encode(&store, &mut tape, &WindowBatch::single(&w, 0));
            tape.value(scene.h_focal).clone()
        };
        assert_ne!(
            encode_with(EncoderKind::Lstm).data(),
            encode_with(EncoderKind::Transformer).data()
        );
    }

    #[test]
    fn rollout_gradients_reach_decoder_params() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(2);
        let cfg = BackboneConfig::default();
        let dec = RolloutDecoder::new(&mut store, &mut rng, "d", &cfg, 8);
        let w = toy_window(0);
        let batch = WindowBatch::single(&w, 0);
        let mut tape = Tape::new();
        let ctx = tape.constant(Tensor::randn(1, 8, 0.0, 1.0, &mut rng));
        let pred = dec.rollout(&store, &mut tape, ctx);
        let loss = base_loss(&mut tape, pred, &batch);
        let grads = tape.backward(loss);
        let pgrads = tape.param_grads(&grads);
        assert!(!pgrads.is_empty(), "decoder params got no gradients");
        assert!(pgrads.iter().all(|(_, g)| g.all_finite()));
    }
}
