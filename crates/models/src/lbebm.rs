//! LBEBM backbone (Pang et al., CVPR 2021), reduced-width.
//!
//! Trajectory prediction with a *latent belief energy-based model*: a
//! low-dimensional plan latent `z` whose prior is an EBM over the social
//! context, sampled by short-run Langevin MCMC. Training uses an amortized
//! posterior (reparameterized) for reconstruction plus a contrastive
//! energy loss that pushes posterior latents to low energy and short-run
//! prior samples to high energy. Inference draws `z` by running Langevin
//! dynamics on the learned energy landscape — which is why LBEBM's
//! inference is measurably slower than PECNet's in Table VIII, an effect
//! this implementation reproduces (each Langevin step is an extra
//! energy-network forward/backward).
//!
//! Batched: the posterior, the Langevin chains, and the energy head all
//! run over `[B, ·]` rows at once. Per-row energies are independent, so
//! one `sum_all` backward on the inner tape yields every chain's
//! `∂E/∂z` in a single pass.

use crate::backbone::{
    batch_fut_flat_tensor, EncodedScene, InteractionKind, RolloutDecoder, SceneEncoder,
    BACKBONE_GROUP,
};
use crate::config::BackboneConfig;
use crate::traits::{randn_per_window, Backbone, ForwardCtx, GenMode, Generation};
use adaptraj_data::trajectory::T_PRED;
use adaptraj_data::WindowBatch;
use adaptraj_tensor::nn::{Activation, Mlp};
use adaptraj_tensor::{ParamStore, Rng, Tape, Tensor, Var};

/// Langevin steps for short-run MCMC sampling of the plan latent.
const LANGEVIN_STEPS: usize = 4;
/// Langevin step size.
const LANGEVIN_STEP_SIZE: f32 = 0.2;
/// Weight of the contrastive energy loss.
const ENERGY_WEIGHT: f32 = 0.1;
/// Weight of the Gaussian regularization on posterior latents. Strong
/// enough to keep the posterior near the region short-run Langevin
/// sampling reaches at inference — with a looser posterior the decoder
/// over-relies on future-informed latents it will never see again.
const KL_WEIGHT: f32 = 0.15;

/// The LBEBM backbone.
#[derive(Debug, Clone)]
pub struct Lbebm {
    cfg: BackboneConfig,
    scene: SceneEncoder,
    /// Amortized posterior: `[h_focal | future_flat] -> [mu | logvar]`.
    posterior: Mlp,
    /// Energy head: `[z | h_focal | P_i] -> scalar energy per row`.
    energy: Mlp,
    rollout: RolloutDecoder,
}

impl Lbebm {
    pub fn new(store: &mut ParamStore, rng: &mut Rng, cfg: BackboneConfig) -> Self {
        let scene = SceneEncoder::new(store, rng, "lbebm", &cfg, InteractionKind::MeanPool);
        let posterior = Mlp::new(
            store,
            rng,
            "lbebm.post",
            &[cfg.hidden_dim + T_PRED * 2, cfg.hidden_dim, 2 * cfg.z_dim],
            Activation::Relu,
            BACKBONE_GROUP,
        );
        let energy = Mlp::new(
            store,
            rng,
            "lbebm.energy",
            &[
                cfg.z_dim + cfg.hidden_dim + cfg.inter_dim,
                cfg.hidden_dim,
                1,
            ],
            Activation::Relu,
            BACKBONE_GROUP,
        );
        // Context: [h | P | z | extra].
        let ctx_dim = cfg.base_ctx_dim() + cfg.z_dim;
        let rollout = RolloutDecoder::new(store, rng, "lbebm.roll", &cfg, ctx_dim);
        Self {
            cfg,
            scene,
            posterior,
            energy,
            rollout,
        }
    }

    /// Energy of a batch of latents `[B, z]` given frozen context values,
    /// on a private tape; returns the gradient w.r.t. `z` (for Langevin,
    /// `[B, z]` — rows are independent) and the total energy value.
    fn energy_grad(&self, store: &ParamStore, z: &Tensor, h: &Tensor, p: &Tensor) -> (Tensor, f32) {
        // `with_pooled` is re-entrant: during training the outer job
        // already holds the thread's pooled tape, so this inner Langevin
        // tape runs as a temporary that still retires its buffers.
        adaptraj_tensor::with_pooled(|tape| {
            let zv = tape.input(z.clone());
            let hv = tape.constant(h.clone());
            let pv = tape.constant(p.clone());
            let joint = tape.concat_cols(&[zv, hv, pv]);
            let e = self.energy.forward(store, tape, joint);
            let e = tape.sum_all(e);
            let grads = tape.backward(e);
            let out = (grads.expect(zv).clone(), tape.value(e).item());
            grads.recycle();
            out
        })
    }

    /// Short-run Langevin MCMC from a standard-normal initialization:
    /// `z ← z − s/2 · ∂E/∂z + √s · ε`, all chains stepped jointly with
    /// noise row `b` drawn from window `b`'s rng stream.
    fn langevin_sample(
        &self,
        store: &ParamStore,
        h: &Tensor,
        p: &Tensor,
        rngs: &mut [Rng],
    ) -> Tensor {
        let mut z = randn_per_window(rngs, self.cfg.z_dim, 0.0, 1.0);
        let s = LANGEVIN_STEP_SIZE;
        for _ in 0..LANGEVIN_STEPS {
            let (grad, _) = self.energy_grad(store, &z, h, p);
            z.axpy(-s / 2.0, &grad);
            let noise = randn_per_window(rngs, self.cfg.z_dim, 0.0, s.sqrt());
            z.axpy(1.0, &noise);
            // Keep the chains in a sane region early in training.
            for v in z.data_mut() {
                *v = v.clamp(-4.0, 4.0);
            }
        }
        z
    }
}

impl Backbone for Lbebm {
    fn name(&self) -> &'static str {
        "LBEBM"
    }

    fn config(&self) -> &BackboneConfig {
        &self.cfg
    }

    fn encode(&self, store: &ParamStore, tape: &mut Tape, batch: &WindowBatch<'_>) -> EncodedScene {
        self.scene.encode(store, tape, batch)
    }

    fn generate(
        &self,
        ctx: &mut ForwardCtx<'_>,
        batch: &WindowBatch<'_>,
        enc: &EncodedScene,
        extra: Option<Var>,
    ) -> Generation {
        assert_eq!(
            extra.is_some(),
            self.cfg.extra_dim > 0,
            "extra conditioning must match the configured extra_dim"
        );
        let zd = self.cfg.z_dim;
        let store = ctx.store;
        let (z, aux_loss) = match ctx.mode {
            GenMode::Train => {
                // Posterior samples, one per window row.
                let tape = &mut *ctx.tape;
                let fut = tape.constant(batch_fut_flat_tensor(batch));
                let joint = tape.concat_cols(&[enc.h_focal, fut]);
                let stats = self.posterior.forward(store, tape, joint);
                let mu = tape.slice_cols(stats, 0, zd);
                let logvar_raw = tape.slice_cols(stats, zd, 2 * zd);
                let logvar_t = tape.tanh(logvar_raw);
                let logvar = tape.scale(logvar_t, 3.0);
                let half = tape.scale(logvar, 0.5);
                let std = tape.exp(half);
                let eps = tape.constant(randn_per_window(ctx.rngs, zd, 0.0, 1.0));
                let noise = tape.mul(std, eps);
                let z_pos = tape.add(mu, noise);

                // Contrastive energy: posterior latents low, short-run
                // prior samples high. The negative samples are detached
                // (constants) — only the energy head learns from them.
                // Everything is kept per-row (`[B, 1]`) until the final
                // mean so per-window squares regularize correctly.
                let h_val = tape.value(enc.h_focal).clone();
                let p_val = tape.value(enc.p_i).clone();
                let z_neg = self.langevin_sample(store, &h_val, &p_val, ctx.rngs);
                let joint_pos = tape.concat_cols(&[z_pos, enc.h_focal, enc.p_i]);
                let e_pos = self.energy.forward(store, tape, joint_pos); // [B, 1]
                let z_neg_var = tape.constant(z_neg);
                let joint_neg = tape.concat_cols(&[z_neg_var, enc.h_focal, enc.p_i]);
                let e_neg = self.energy.forward(store, tape, joint_neg); // [B, 1]
                let contrast = tape.sub(e_pos, e_neg);
                // Bound energies so the contrastive objective cannot run
                // away (standard magnitude regularization).
                let ep2 = tape.mul(e_pos, e_pos);
                let en2 = tape.mul(e_neg, e_neg);
                let reg = tape.add(ep2, en2);
                let reg = tape.scale(reg, 0.01);
                let energy_term = tape.add(contrast, reg);
                let energy_rows = tape.scale(energy_term, ENERGY_WEIGHT); // [B, 1]

                // Weak Gaussian prior regularization on the posterior,
                // summed over z per window.
                let mu2 = tape.mul(mu, mu);
                let var = tape.exp(logvar);
                let one_plus = tape.add_scalar(logvar, 1.0);
                let inner = tape.sub(one_plus, mu2);
                let inner = tape.sub(inner, var); // [B, z]
                let ones_z = tape.constant(Tensor::ones(zd, 1));
                let kl_rows_raw = tape.matmul(inner, ones_z); // [B, 1]
                let kl_rows = tape.scale(kl_rows_raw, -0.5 * KL_WEIGHT);

                let aux_rows = tape.add(energy_rows, kl_rows); // [B, 1]
                let aux = tape.mean_rows(aux_rows); // batch mean, [1, 1]
                (z_pos, Some(aux))
            }
            GenMode::Sample => {
                let (h_val, p_val) = {
                    let tape = &*ctx.tape;
                    (tape.value(enc.h_focal).clone(), tape.value(enc.p_i).clone())
                };
                let z = self.langevin_sample(store, &h_val, &p_val, ctx.rngs);
                (ctx.tape.constant(z), None)
            }
        };

        let tape = &mut *ctx.tape;
        let mut parts = vec![enc.h_focal, enc.p_i, z];
        if let Some(e) = extra {
            parts.push(e);
        }
        let cond = tape.concat_cols(&parts);
        let pred = self.rollout.rollout(store, tape, cond);
        Generation { pred, aux_loss }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptraj_data::domain::DomainId;
    use adaptraj_data::trajectory::{Point, TrajWindow, T_OBS, T_TOTAL};
    use adaptraj_tensor::optim::Adam;
    use adaptraj_tensor::param::GradBuffer;

    fn toy_window(vx: f32) -> TrajWindow {
        let focal: Vec<Point> = (0..T_TOTAL).map(|t| [vx * t as f32, 0.0]).collect();
        let nb: Vec<Vec<Point>> = vec![(0..T_OBS).map(|t| [vx * t as f32, -1.5]).collect()];
        TrajWindow::from_world(&focal, &nb, DomainId::Sdd)
    }

    #[test]
    fn shapes_and_finiteness() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(0);
        let model = Lbebm::new(&mut store, &mut rng, BackboneConfig::default());
        let w = toy_window(0.4);
        let batch = WindowBatch::single(&w, 0);
        let mut tape = Tape::new();
        let mut ctx = ForwardCtx::train(&store, &mut tape, std::slice::from_mut(&mut rng));
        let (pred, loss) = model.train_forward(&mut ctx, &batch, None);
        assert_eq!(tape.value(pred).shape(), (T_PRED, 2));
        assert!(tape.value(loss).item().is_finite());
        let mut t2 = Tape::new();
        let mut c2 = ForwardCtx::sample(&store, &mut t2, std::slice::from_mut(&mut rng));
        let s = model.sample_forward(&mut c2, &batch, None);
        assert_eq!(t2.value(s).shape(), (T_PRED, 2));
    }

    #[test]
    fn batched_pass_covers_ragged_windows() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(8);
        let model = Lbebm::new(&mut store, &mut rng, BackboneConfig::default());
        let solo: Vec<Point> = (0..T_TOTAL).map(|t| [0.1 * t as f32, -0.2]).collect();
        let ws = [
            toy_window(0.4),
            TrajWindow::from_world(&solo, &[], DomainId::Sdd),
        ];
        let batch = WindowBatch::new(ws.iter().collect(), vec![0, 1]);
        let mut rngs: Vec<Rng> = (0..2).map(|i| Rng::seed_from(100 + i as u64)).collect();
        let mut tape = Tape::new();
        let mut ctx = ForwardCtx::train(&store, &mut tape, &mut rngs);
        let (pred, loss) = model.train_forward(&mut ctx, &batch, None);
        assert_eq!(tape.value(pred).shape(), (T_PRED * 2, 2));
        assert!(tape.value(loss).item().is_finite());
        let grads = tape.backward(loss);
        assert!(tape.param_grads(&grads).iter().all(|(_, g)| g.all_finite()));
    }

    #[test]
    fn training_reduces_loss_on_fixed_window() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(1);
        let model = Lbebm::new(&mut store, &mut rng, BackboneConfig::default());
        let w = toy_window(0.4);
        let mut opt = Adam::new(3e-3);
        let (mut first, mut last) = (0.0, 0.0);
        for it in 0..120 {
            let batch = WindowBatch::single(&w, 0);
            let mut tape = Tape::new();
            let mut ctx = ForwardCtx::train(&store, &mut tape, std::slice::from_mut(&mut rng));
            let (_, loss) = model.train_forward(&mut ctx, &batch, None);
            let grads = tape.backward(loss);
            let mut buf = GradBuffer::new();
            buf.absorb(&tape, &grads);
            buf.clip_global_norm(5.0);
            opt.step(&mut store, &buf);
            let v = tape.value(loss).item();
            if it == 0 {
                first = v;
            }
            last = v;
        }
        assert!(last < first * 0.6, "loss did not drop: {first} -> {last}");
    }

    #[test]
    fn langevin_descends_energy_in_expectation() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(2);
        let model = Lbebm::new(&mut store, &mut rng, BackboneConfig::default());
        let h = Tensor::randn(1, model.cfg.hidden_dim, 0.0, 1.0, &mut rng);
        let p = Tensor::randn(1, model.cfg.inter_dim, 0.0, 1.0, &mut rng);
        // Average over chains: Langevin should not *increase* energy much
        // relative to the init (it adds noise, so per-chain it can).
        let mut e0_sum = 0.0;
        let mut e1_sum = 0.0;
        for _ in 0..16 {
            let z0 = Tensor::randn(1, model.cfg.z_dim, 0.0, 1.0, &mut rng);
            let (_, e0) = model.energy_grad(&store, &z0, &h, &p);
            let z1 = model.langevin_sample(&store, &h, &p, std::slice::from_mut(&mut rng));
            let (_, e1) = model.energy_grad(&store, &z1, &h, &p);
            e0_sum += e0;
            e1_sum += e1;
        }
        assert!(
            e1_sum <= e0_sum + 1.0,
            "Langevin chains drifting uphill: {e0_sum} -> {e1_sum}"
        );
    }

    #[test]
    fn sampling_is_stochastic() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(3);
        let model = Lbebm::new(&mut store, &mut rng, BackboneConfig::default());
        let w = toy_window(0.2);
        let batch = WindowBatch::single(&w, 0);
        let mut t1 = Tape::new();
        let mut c1 = ForwardCtx::sample(&store, &mut t1, std::slice::from_mut(&mut rng));
        let s1 = model.sample_forward(&mut c1, &batch, None);
        let mut t2 = Tape::new();
        let mut c2 = ForwardCtx::sample(&store, &mut t2, std::slice::from_mut(&mut rng));
        let s2 = model.sample_forward(&mut c2, &batch, None);
        assert_ne!(t1.value(s1).data(), t2.value(s2).data());
    }

    #[test]
    fn extra_conditioning_is_used() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(4);
        let cfg = BackboneConfig::default().with_extra(5);
        let model = Lbebm::new(&mut store, &mut rng, cfg);
        let w = toy_window(0.4);
        let batch = WindowBatch::single(&w, 0);
        let mut tape = Tape::new();
        let enc = model.encode(&store, &mut tape, &batch);
        let e1 = tape.constant(Tensor::zeros(1, 5));
        let e2 = tape.constant(Tensor::full(1, 5, 3.0));
        let mut ctx = ForwardCtx::sample(&store, &mut tape, std::slice::from_mut(&mut rng));
        let g1 = model.generate(&mut ctx, &batch, &enc, Some(e1));
        let g2 = model.generate(&mut ctx, &batch, &enc, Some(e2));
        assert_ne!(tape.value(g1.pred).data(), tape.value(g2.pred).data());
    }
}
