//! Model hyperparameters.

/// Which sequence model implements the individual-mobility encoder `φ`
/// (Eq. 2). The paper names both LSTM and Transformer as valid choices
/// (Sec. II-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EncoderKind {
    #[default]
    Lstm,
    /// A small self-attention encoder (single head, sinusoidal positions).
    Transformer,
}

/// Architecture dimensions shared by the backbones. Sized for CPU training
/// (the paper uses GPU-scale widths; the architecture is identical, only
/// narrower — see DESIGN.md).
#[derive(Debug, Clone)]
pub struct BackboneConfig {
    /// Location-embedding width (Eq. 1).
    pub embed_dim: usize,
    /// Individual-mobility encoder hidden width (Eq. 2).
    pub hidden_dim: usize,
    /// Neighbor-interaction tensor width (Eq. 3).
    pub inter_dim: usize,
    /// Decoder LSTM width (Eqs. 4–7).
    pub dec_hidden: usize,
    /// Latent/noise width `z` (Eq. 5) — the CVAE latent for PECNet, the
    /// belief latent for LBEBM.
    pub z_dim: usize,
    /// Width of the optional extra conditioning vector appended by a
    /// learning method (AdapTraj passes `[H^i, H^s]`; vanilla passes
    /// nothing). Fixed at construction because it sizes the decoder-init
    /// layer.
    pub extra_dim: usize,
    /// Sequence model for the individual-mobility encoder.
    pub encoder: EncoderKind,
}

impl Default for BackboneConfig {
    fn default() -> Self {
        Self {
            embed_dim: 16,
            hidden_dim: 32,
            inter_dim: 32,
            dec_hidden: 32,
            z_dim: 8,
            extra_dim: 0,
            encoder: EncoderKind::Lstm,
        }
    }
}

impl BackboneConfig {
    /// Same architecture with room for an extra conditioning vector.
    pub fn with_extra(mut self, extra_dim: usize) -> Self {
        self.extra_dim = extra_dim;
        self
    }

    /// Same architecture with a different mobility encoder.
    pub fn with_encoder(mut self, encoder: EncoderKind) -> Self {
        self.encoder = encoder;
        self
    }

    /// Width of the decoder conditioning context:
    /// `[h_focal | P_i | z-or-endpoint-conditioning | extra]` is assembled
    /// by each backbone; this is just the shared `[h | P | extra]` part.
    pub fn base_ctx_dim(&self) -> usize {
        self.hidden_dim + self.inter_dim + self.extra_dim
    }
}

/// Optimization hyperparameters for the learning-method trainers.
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f32,
    /// Global gradient-norm clip (0 disables).
    pub grad_clip: f32,
    pub seed: u64,
    /// Cap on training windows per source domain (0 = use all). Keeps the
    /// CPU reproduction tractable; the sampling is chronological-prefix so
    /// it stays leak-free.
    pub max_train_windows: usize,
    /// Early stopping on the training loss: stop after this many epochs
    /// without improvement (0 disables). Applies to the single-phase
    /// trainers; AdapTraj's three-step schedule always runs to `epochs`.
    pub patience: usize,
    /// Worker threads for the data-parallel executor (`adaptraj-exec`).
    /// `0` or `1` run per-window passes inline on the calling thread; the
    /// per-window seed-splitting scheme makes results bit-identical for
    /// every worker count.
    pub workers: usize,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            epochs: 12,
            batch_size: 32,
            lr: 3e-3,
            grad_clip: 5.0,
            seed: 1,
            max_train_windows: 400,
            patience: 0,
            workers: 1,
        }
    }
}

impl TrainerConfig {
    /// Fast settings for unit tests.
    pub fn smoke() -> Self {
        Self {
            epochs: 3,
            batch_size: 16,
            max_train_windows: 60,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_dim_includes_extra() {
        let base = BackboneConfig::default();
        let with = base.clone().with_extra(10);
        assert_eq!(with.base_ctx_dim(), base.base_ctx_dim() + 10);
    }
}
