//! # adaptraj-models
//!
//! Backbone trajectory predictors and baseline learning methods for the
//! AdapTraj (ICDE 2024) reproduction.
//!
//! * [`backbone`] — the shared seq2seq skeleton of Fig. 1 (location
//!   embedding → LSTM individual-mobility encoder → neighbor-interaction
//!   layer → autoregressive rollout decoder).
//! * [`pecnet`] / [`lbebm`] — the two state-of-the-art backbones the paper
//!   plugs AdapTraj into: an endpoint-conditioned CVAE and a latent-belief
//!   energy-based model with short-run Langevin sampling.
//! * [`vanilla`] / [`counter`] / [`causal_motion`] — the compared learning
//!   methods: plain training, counterfactual analysis, and the
//!   invariance-loss approach.
//! * [`traits::Backbone`] — the encode/generate split that makes AdapTraj
//!   (in `adaptraj-core`) plug-and-play: it taps `h_ei` and `P_i` and
//!   feeds its fused features back as `extra` conditioning. Forward passes
//!   run over a whole `WindowBatch` at once — one tape pass with batched
//!   `GEMM`/`FusedAffine`/`LstmCell` nodes, ragged neighbor counts handled
//!   by masking — and thread a [`traits::ForwardCtx`] (store + tape + one
//!   rng per window + mode) so they cross worker-thread boundaries cleanly.
//! * [`trainer::Trainer`] — the shared mini-batch loop behind the
//!   `adaptraj-exec` worker pool: batches split into domain-homogeneous
//!   jobs, `--workers N` data-parallelism with bit-identical results for
//!   every worker count.

pub mod backbone;
pub mod causal_motion;
pub mod config;
pub mod counter;
pub mod diagnostics;
pub mod lbebm;
pub mod pecnet;
pub mod predictor;
pub mod social_lstm;
pub mod trainer;
pub mod traits;
pub mod vanilla;

pub use backbone::{EncodedScene, InteractionKind, RolloutDecoder, SceneEncoder, BACKBONE_GROUP};
pub use causal_motion::CausalMotion;
pub use config::{BackboneConfig, EncoderKind, TrainerConfig};
pub use counter::Counter;
pub use lbebm::Lbebm;
pub use pecnet::PecNet;
pub use predictor::{Predictor, TrainReport};
pub use social_lstm::SocialLstm;
pub use trainer::Trainer;
pub use traits::{randn_per_window, Backbone, ForwardCtx, GenMode, Generation};
pub use vanilla::Vanilla;
