//! The CausalMotion baseline (Liu et al., CVPR 2022): invariance loss.
//!
//! CausalMotion suppresses spurious (style/domain-specific) correlations
//! with an invariance penalty across training environments, in the spirit
//! of IRM / V-REx: the per-environment risks should be equal, so the
//! variance of risks is penalized. The method is designed for a *single*
//! source domain, so — following the AdapTraj paper's experimental
//! protocol — all source data is pooled and environments are formed as
//! random batch halves. Without true domain structure the penalty mostly
//! injects gradient noise and suppresses useful (but domain-looking)
//! signal, which is why CausalMotion degrades markedly in the multi-source
//! setting (Tab. III/IV) — the behaviour this implementation reproduces.

use crate::config::TrainerConfig;
use crate::predictor::{cap_per_domain, Predictor, TrainReport};
use crate::traits::{Backbone, ForwardCtx};
use adaptraj_data::batch::{keyed_jobs, shuffled_batches, WindowBatch, MAX_WINDOWS_PER_JOB};
use adaptraj_data::trajectory::{Point, TrajWindow};
use adaptraj_exec::{window_seed, WorkerPool};
use adaptraj_obs::{EpochRecord, PhaseTiming};
use adaptraj_tensor::optim::Adam;
use adaptraj_tensor::{GradBuffer, ParamStore, Rng};

/// Weight of the risk-variance (V-REx style) invariance penalty.
const INVARIANCE_WEIGHT: f32 = 2.0;

/// A backbone trained with the invariance-loss learning method.
pub struct CausalMotion<B: Backbone> {
    backbone: B,
    store: ParamStore,
    cfg: TrainerConfig,
}

impl<B: Backbone> CausalMotion<B> {
    pub fn new(cfg: TrainerConfig, build: impl FnOnce(&mut ParamStore, &mut Rng) -> B) -> Self {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(cfg.seed);
        let backbone = build(&mut store, &mut rng);
        Self {
            backbone,
            store,
            cfg,
        }
    }

    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Mutable parameter access (checkpoint loading).
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }
}

impl<B: Backbone> Predictor for CausalMotion<B> {
    fn name(&self) -> String {
        format!("{}-CausalMotion", self.backbone.name())
    }

    fn fit(&mut self, train: &[TrajWindow]) -> TrainReport {
        let windows = cap_per_domain(train, &self.cfg);
        let mut rng = Rng::seed_from(self.cfg.seed ^ 0xCA5);
        let mut opt = Adam::new(self.cfg.lr);
        let mut report = TrainReport::default();
        if windows.is_empty() {
            return report;
        }

        let pool = WorkerPool::new(self.cfg.workers);
        let seed = self.cfg.seed;
        let windows_trained = adaptraj_obs::global().counter("exec.windows_trained");
        let fit_start = std::time::Instant::now();
        for epoch in 0..self.cfg.epochs {
            let epoch_start = std::time::Instant::now();
            let mut epoch_loss = 0.0;
            let mut seen = 0usize;
            for batch in shuffled_batches(windows.len(), self.cfg.batch_size, &mut rng) {
                // Two pseudo-environments: the batch halves. Per-half
                // gradient buffers let us assemble the exact gradient of
                //   L = (r1 + r2)/2 + λ (r1 − r2)²
                // without a cross-environment tape:
                //   dL/dθ = (g1 + g2)/2 + 2λ (r1 − r2)(g1 − g2)
                // where r_k are mean half risks and g_k their gradients.
                // Each half is split into domain-homogeneous batched jobs
                // (the split depends only on the half's domain keys, so
                // job formation is worker-count independent).
                let mid = batch.len().div_ceil(2);
                let store = &self.store;
                let backbone = &self.backbone;
                let halves = [&batch[..mid], &batch[mid..]];
                let mut jobs: Vec<(usize, WindowBatch<'_>)> = Vec::new();
                for (half, span) in halves.iter().enumerate() {
                    let keys: Vec<_> = span.iter().map(|&i| windows[i].domain).collect();
                    for pos in keyed_jobs(&keys, MAX_WINDOWS_PER_JOB) {
                        let ws = pos.iter().map(|&p| windows[span[p]]).collect();
                        let ids = pos.iter().map(|&p| span[p] as u64).collect();
                        jobs.push((half, WindowBatch::new(ws, ids)));
                    }
                }
                let results = pool
                    .map(&jobs, |_, (_, wb)| {
                        crate::trainer::worker_tape(|tape| {
                            let mut rngs: Vec<Rng> = wb
                                .ids()
                                .iter()
                                .map(|&id| Rng::seed_from(window_seed(seed, epoch as u64, id)))
                                .collect();
                            let mut ctx = ForwardCtx::train(store, tape, &mut rngs);
                            let (_, loss) = backbone.train_forward(&mut ctx, wb, None);
                            let tape = ctx.tape;
                            let val = tape.value(loss).item();
                            let grads = tape.backward(loss);
                            let pairs = tape.take_param_grads(grads);
                            (val, pairs)
                        })
                    })
                    .unwrap_or_else(|e| panic!("training worker panicked: {e}"));
                let mut bufs = [GradBuffer::new(), GradBuffer::new()];
                let mut risks = [0.0f32; 2];
                // Reduce in job order (half 0's jobs then half 1's):
                // bit-identical for any worker count.
                for ((half, wb), (val, pairs)) in jobs.iter().zip(&results) {
                    let n_half = halves[*half].len();
                    let weight = wb.len() as f32 / n_half.max(1) as f32;
                    bufs[*half].absorb_pairs_scaled(pairs, weight);
                    risks[*half] += val * weight;
                    epoch_loss += val * wb.len() as f32;
                    seen += wb.len();
                }
                windows_trained.add(batch.len() as u64);
                let mut total = GradBuffer::new();
                total.scaled_add(&bufs[0], 0.5);
                total.scaled_add(&bufs[1], 0.5);
                if batch.len() > 1 {
                    let gap = risks[0] - risks[1];
                    let coeff = 2.0 * INVARIANCE_WEIGHT * gap;
                    total.scaled_add(&bufs[0], coeff);
                    total.scaled_add(&bufs[1], -coeff);
                }
                if self.cfg.grad_clip > 0.0 {
                    total.clip_global_norm(self.cfg.grad_clip);
                }
                opt.step(&mut self.store, &total);
                // Retire per-half buffers, the combined buffer, and the
                // shipped gradient pairs into this thread's pool.
                total.recycle();
                let [b0, b1] = bufs;
                b0.recycle();
                b1.recycle();
                for (_, pairs) in results {
                    for (_, g) in pairs {
                        g.recycle();
                    }
                }
            }
            let mean = epoch_loss / seen.max(1) as f32;
            report.epoch_losses.push(mean);
            // Full per-epoch record so manifests and the golden-regression
            // layer see CausalMotion the same way they see every other
            // trainer: `loss` is the mean per-window risk (the half-risk
            // V-REx penalty has no per-window decomposition to pin).
            let mut rec = EpochRecord::new(epoch, "train");
            rec.loss = mean as f64;
            rec.components.backbone = mean as f64;
            rec.duration_s = epoch_start.elapsed().as_secs_f64();
            report.epochs.push(rec);
        }
        report
            .phases
            .push(PhaseTiming::new("train", fit_start.elapsed().as_secs_f64()));
        report
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn predict(&self, w: &TrajWindow, rng: &mut Rng) -> Vec<Point> {
        // Inference is architecturally identical to vanilla (the paper
        // notes near-identical inference time for CausalMotion).
        adaptraj_tensor::with_pooled(|tape| {
            let batch = WindowBatch::single(w, 0);
            let mut ctx = ForwardCtx::sample(&self.store, tape, std::slice::from_mut(rng));
            let pred = self.backbone.sample_forward(&mut ctx, &batch, None);
            crate::backbone::tensor_to_points(ctx.tape.value(pred))
        })
    }

    fn predict_batch(&self, batch: &WindowBatch<'_>, rngs: &mut [Rng]) -> Vec<Vec<Point>> {
        assert_eq!(batch.len(), rngs.len(), "one rng per batched window");
        adaptraj_tensor::with_pooled(|tape| {
            let mut ctx = ForwardCtx::sample(&self.store, tape, rngs);
            let pred = self.backbone.sample_forward(&mut ctx, batch, None);
            crate::backbone::batch_pred_points(ctx.tape.value(pred), batch.len())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BackboneConfig;
    use crate::pecnet::PecNet;
    use adaptraj_data::domain::DomainId;
    use adaptraj_data::trajectory::{T_PRED, T_TOTAL};

    fn windows(n: usize) -> Vec<TrajWindow> {
        (0..n)
            .map(|i| {
                let v = 0.2 + (i % 5) as f32 * 0.05;
                let focal: Vec<Point> = (0..T_TOTAL).map(|t| [v * t as f32, 0.0]).collect();
                TrajWindow::from_world(&focal, &[], DomainId::Sdd)
            })
            .collect()
    }

    #[test]
    fn fit_and_predict() {
        let cfg = TrainerConfig {
            epochs: 4,
            ..TrainerConfig::smoke()
        };
        let mut model = CausalMotion::new(cfg, |s, r| PecNet::new(s, r, BackboneConfig::default()));
        assert_eq!(model.name(), "PECNet-CausalMotion");
        let train = windows(16);
        let report = model.fit(&train);
        assert_eq!(report.epoch_losses.len(), 4);
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
        let mut rng = Rng::seed_from(0);
        let pred = model.predict(&train[0], &mut rng);
        assert_eq!(pred.len(), T_PRED);
    }

    #[test]
    fn training_still_descends_despite_penalty() {
        let cfg = TrainerConfig {
            epochs: 10,
            ..TrainerConfig::smoke()
        };
        let mut model = CausalMotion::new(cfg, |s, r| PecNet::new(s, r, BackboneConfig::default()));
        let train = windows(24);
        let report = model.fit(&train);
        assert!(
            report.final_loss().unwrap() < report.epoch_losses[0],
            "{:?}",
            report.epoch_losses
        );
    }
}
