//! The `vanilla` learning method: plain backbone training on pooled data.

use crate::config::TrainerConfig;
use crate::predictor::{cap_per_domain, Predictor, TrainReport};
use crate::trainer::Trainer;
use crate::traits::{Backbone, ForwardCtx};
use adaptraj_data::trajectory::{Point, TrajWindow};
use adaptraj_data::WindowBatch;
use adaptraj_tensor::optim::Adam;
use adaptraj_tensor::{ParamStore, Rng};

/// A backbone trained with nothing but `L_base` + its own auxiliary loss —
/// the paper's "vanilla" rows.
pub struct Vanilla<B: Backbone> {
    backbone: B,
    store: ParamStore,
    cfg: TrainerConfig,
}

impl<B: Backbone> Vanilla<B> {
    /// Builds the wrapper; `build` constructs the backbone into a fresh
    /// parameter store seeded from `cfg.seed`.
    pub fn new(cfg: TrainerConfig, build: impl FnOnce(&mut ParamStore, &mut Rng) -> B) -> Self {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(cfg.seed);
        let backbone = build(&mut store, &mut rng);
        Self {
            backbone,
            store,
            cfg,
        }
    }

    pub fn backbone(&self) -> &B {
        &self.backbone
    }

    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Mutable parameter access (checkpoint loading).
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }
}

impl<B: Backbone> Predictor for Vanilla<B> {
    fn name(&self) -> String {
        format!("{}-vanilla", self.backbone.name())
    }

    fn fit(&mut self, train: &[TrajWindow]) -> TrainReport {
        let windows = cap_per_domain(train, &self.cfg);
        let mut rng = Rng::seed_from(self.cfg.seed ^ 0xF17);
        let mut opt = Adam::new(self.cfg.lr);
        let backbone = &self.backbone;
        Trainer::new(&self.cfg).fit(
            &mut self.store,
            &mut opt,
            &windows,
            &mut rng,
            |store, tape, wb, rngs| {
                let mut ctx = ForwardCtx::train(store, tape, rngs);
                backbone.train_forward(&mut ctx, wb, None).1
            },
        )
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn predict(&self, w: &TrajWindow, rng: &mut Rng) -> Vec<Point> {
        adaptraj_tensor::with_pooled(|tape| {
            let batch = WindowBatch::single(w, 0);
            let mut ctx = ForwardCtx::sample(&self.store, tape, std::slice::from_mut(rng));
            let pred = self.backbone.sample_forward(&mut ctx, &batch, None);
            crate::backbone::tensor_to_points(ctx.tape.value(pred))
        })
    }

    fn predict_batch(&self, batch: &WindowBatch<'_>, rngs: &mut [Rng]) -> Vec<Vec<Point>> {
        assert_eq!(batch.len(), rngs.len(), "one rng per batched window");
        adaptraj_tensor::with_pooled(|tape| {
            let mut ctx = ForwardCtx::sample(&self.store, tape, rngs);
            let pred = self.backbone.sample_forward(&mut ctx, batch, None);
            crate::backbone::batch_pred_points(ctx.tape.value(pred), batch.len())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BackboneConfig;
    use crate::pecnet::PecNet;
    use adaptraj_data::domain::DomainId;
    use adaptraj_data::trajectory::{T_PRED, T_TOTAL};

    fn windows(n: usize, v: f32) -> Vec<TrajWindow> {
        (0..n)
            .map(|i| {
                let vi = v + i as f32 * 0.01;
                let focal: Vec<Point> = (0..T_TOTAL).map(|t| [vi * t as f32, 0.0]).collect();
                TrajWindow::from_world(&focal, &[], DomainId::EthUcy)
            })
            .collect()
    }

    #[test]
    fn fit_and_predict_end_to_end() {
        let cfg = TrainerConfig {
            epochs: 8,
            ..TrainerConfig::smoke()
        };
        let mut model = Vanilla::new(cfg, |s, r| PecNet::new(s, r, BackboneConfig::default()));
        assert_eq!(model.name(), "PECNet-vanilla");
        let train = windows(24, 0.3);
        let report = model.fit(&train);
        assert_eq!(report.epoch_losses.len(), 8);
        assert!(
            report.final_loss().unwrap() < report.epoch_losses[0],
            "training should reduce loss: {:?}",
            report.epoch_losses
        );
        let mut rng = Rng::seed_from(9);
        let pred = model.predict(&train[0], &mut rng);
        assert_eq!(pred.len(), T_PRED);
        // A trained model should roughly continue forward motion.
        assert!(pred.last().unwrap()[0] > 0.0, "prediction goes backwards");
    }

    #[test]
    fn predict_k_returns_k_samples() {
        let cfg = TrainerConfig::smoke();
        let model = Vanilla::new(cfg, |s, r| PecNet::new(s, r, BackboneConfig::default()));
        let train = windows(1, 0.3);
        let mut rng = Rng::seed_from(3);
        let samples = model.predict_k(&train[0], 5, &mut rng);
        assert_eq!(samples.len(), 5);
        assert_ne!(samples[0], samples[1], "samples must differ");
    }
}
