//! PECNet backbone (Mangalam et al., ECCV 2020), reduced-width.
//!
//! "It is not the journey but the destination": PECNet first infers the
//! trajectory *endpoint* with a conditional VAE, then predicts the full
//! future conditioned on that endpoint, with a non-local social layer
//! providing neighbor context. This implementation keeps that structure —
//! endpoint CVAE (train: posterior over ground-truth endpoints + KL;
//! inference: truncated prior sampling), attention interaction, and an
//! endpoint-conditioned rollout — at CPU-friendly widths, batched over
//! all windows of a job (`[B, ·]` rows; latent row `b` is drawn from
//! window `b`'s rng stream).

use crate::backbone::{
    batch_endpoint_tensor, EncodedScene, InteractionKind, RolloutDecoder, SceneEncoder,
    BACKBONE_GROUP,
};
use crate::config::BackboneConfig;
use crate::traits::{randn_per_window, Backbone, ForwardCtx, GenMode, Generation};
use adaptraj_data::WindowBatch;
use adaptraj_tensor::nn::{Activation, Mlp};
use adaptraj_tensor::{ParamStore, Rng, Tape, Var};

/// Weight of the endpoint reconstruction loss.
const ENDPOINT_WEIGHT: f32 = 1.0;
/// Weight of the CVAE KL term.
const KL_WEIGHT: f32 = 0.05;
/// Truncation of prior samples at inference (PECNet's "truncation trick").
const TRUNCATION: f32 = 1.5;

/// The PECNet backbone.
#[derive(Debug, Clone)]
pub struct PecNet {
    cfg: BackboneConfig,
    scene: SceneEncoder,
    /// Encodes the ground-truth endpoint for the CVAE posterior.
    endpoint_enc: Mlp,
    /// Produces `[mu | logvar]` from `[h_focal | endpoint_feat]`.
    latent: Mlp,
    /// Decodes `[h_focal | z] -> endpoint (2)`.
    endpoint_dec: Mlp,
    rollout: RolloutDecoder,
}

impl PecNet {
    pub fn new(store: &mut ParamStore, rng: &mut Rng, cfg: BackboneConfig) -> Self {
        let ep_feat = cfg.embed_dim;
        let scene = SceneEncoder::new(store, rng, "pecnet", &cfg, InteractionKind::Attention);
        let endpoint_enc = Mlp::new(
            store,
            rng,
            "pecnet.epenc",
            &[2, ep_feat],
            Activation::Relu,
            BACKBONE_GROUP,
        )
        .with_output_activation();
        let latent = Mlp::new(
            store,
            rng,
            "pecnet.latent",
            &[cfg.hidden_dim + ep_feat, 2 * cfg.z_dim],
            Activation::Relu,
            BACKBONE_GROUP,
        );
        let endpoint_dec = Mlp::new(
            store,
            rng,
            "pecnet.epdec",
            &[cfg.hidden_dim + cfg.z_dim, cfg.embed_dim, 2],
            Activation::Relu,
            BACKBONE_GROUP,
        );
        // Context: [h | P | endpoint (2) | extra].
        let ctx_dim = cfg.base_ctx_dim() + 2;
        let rollout = RolloutDecoder::new(store, rng, "pecnet.roll", &cfg, ctx_dim);
        Self {
            cfg,
            scene,
            endpoint_enc,
            latent,
            endpoint_dec,
            rollout,
        }
    }

    /// Infers the endpoints `[B, 2]`. In train mode returns the CVAE
    /// auxiliary loss (endpoint MSE + KL, both batch means) alongside; in
    /// sample mode draws truncated prior latents, one per window.
    fn infer_endpoint(
        &self,
        ctx: &mut ForwardCtx<'_>,
        batch: &WindowBatch<'_>,
        enc: &EncodedScene,
    ) -> (Var, Option<Var>) {
        let zd = self.cfg.z_dim;
        let b = batch.len();
        let store = ctx.store;
        match ctx.mode {
            GenMode::Train => {
                let tape = &mut *ctx.tape;
                let gt_ep = batch_endpoint_tensor(batch);
                let gt_var = tape.constant(gt_ep.clone());
                let ep_feat = self.endpoint_enc.forward(store, tape, gt_var);
                let joint = tape.concat_cols(&[enc.h_focal, ep_feat]);
                let stats = self.latent.forward(store, tape, joint); // [B, 2z]
                let mu = tape.slice_cols(stats, 0, zd);
                let logvar_raw = tape.slice_cols(stats, zd, 2 * zd);
                // Bound logvar to keep exp() well-behaved on a small tape.
                let logvar_t = tape.tanh(logvar_raw);
                let logvar = tape.scale(logvar_t, 3.0);
                // Reparameterized sample, row b from window b's rng.
                let half_logvar = tape.scale(logvar, 0.5);
                let std = tape.exp(half_logvar);
                let eps = tape.constant(randn_per_window(ctx.rngs, zd, 0.0, 1.0));
                let noise = tape.mul(std, eps);
                let z = tape.add(mu, noise);
                // Endpoint reconstruction (mse_to's mean over B·2 elements
                // is the batch mean of the per-window endpoint MSE).
                let dec_in = tape.concat_cols(&[enc.h_focal, z]);
                let ep_hat = self.endpoint_dec.forward(store, tape, dec_in);
                let ep_mse = tape.mse_to(ep_hat, &gt_ep);
                // KL(q || N(0, I)) = -0.5 Σ (1 + logσ² − μ² − σ²), summed
                // per window then averaged over the batch.
                let mu2 = tape.mul(mu, mu);
                let var = tape.exp(logvar);
                let one_plus = tape.add_scalar(logvar, 1.0);
                let inner = tape.sub(one_plus, mu2);
                let inner = tape.sub(inner, var);
                let kl_sum = tape.sum_all(inner);
                let kl = tape.scale(kl_sum, -0.5 / b as f32);
                let weighted_mse = tape.scale(ep_mse, ENDPOINT_WEIGHT);
                let weighted_kl = tape.scale(kl, KL_WEIGHT);
                let aux = tape.add(weighted_mse, weighted_kl);
                (ep_hat, Some(aux))
            }
            GenMode::Sample => {
                let mut z = randn_per_window(ctx.rngs, zd, 0.0, 1.0);
                for v in z.data_mut() {
                    *v = v.clamp(-TRUNCATION, TRUNCATION);
                }
                let tape = &mut *ctx.tape;
                let zv = tape.constant(z);
                let dec_in = tape.concat_cols(&[enc.h_focal, zv]);
                let ep_hat = self.endpoint_dec.forward(store, tape, dec_in);
                (ep_hat, None)
            }
        }
    }
}

impl Backbone for PecNet {
    fn name(&self) -> &'static str {
        "PECNet"
    }

    fn config(&self) -> &BackboneConfig {
        &self.cfg
    }

    fn encode(&self, store: &ParamStore, tape: &mut Tape, batch: &WindowBatch<'_>) -> EncodedScene {
        self.scene.encode(store, tape, batch)
    }

    fn generate(
        &self,
        ctx: &mut ForwardCtx<'_>,
        batch: &WindowBatch<'_>,
        enc: &EncodedScene,
        extra: Option<Var>,
    ) -> Generation {
        assert_eq!(
            extra.is_some(),
            self.cfg.extra_dim > 0,
            "extra conditioning must match the configured extra_dim"
        );
        let (endpoint, aux_loss) = self.infer_endpoint(ctx, batch, enc);
        let mut parts = vec![enc.h_focal, enc.p_i, endpoint];
        if let Some(e) = extra {
            parts.push(e);
        }
        let cond = ctx.tape.concat_cols(&parts);
        let pred = self.rollout.rollout(ctx.store, ctx.tape, cond);
        Generation { pred, aux_loss }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptraj_data::domain::DomainId;
    use adaptraj_data::trajectory::{Point, TrajWindow, T_OBS, T_PRED, T_TOTAL};
    use adaptraj_tensor::optim::Adam;
    use adaptraj_tensor::param::GradBuffer;
    use adaptraj_tensor::Tensor;

    fn toy_window(vx: f32) -> TrajWindow {
        let focal: Vec<Point> = (0..T_TOTAL).map(|t| [vx * t as f32, 0.0]).collect();
        let nb: Vec<Vec<Point>> = vec![(0..T_OBS).map(|t| [vx * t as f32, 1.5]).collect()];
        TrajWindow::from_world(&focal, &nb, DomainId::EthUcy)
    }

    #[test]
    fn shapes_and_finiteness() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(0);
        let model = PecNet::new(&mut store, &mut rng, BackboneConfig::default());
        let w = toy_window(0.4);
        let batch = WindowBatch::single(&w, 0);
        let mut tape = Tape::new();
        let mut ctx = ForwardCtx::train(&store, &mut tape, std::slice::from_mut(&mut rng));
        let (pred, loss) = model.train_forward(&mut ctx, &batch, None);
        assert_eq!(tape.value(pred).shape(), (T_PRED, 2));
        assert!(tape.value(loss).item().is_finite());

        let mut tape2 = Tape::new();
        let mut ctx2 = ForwardCtx::sample(&store, &mut tape2, std::slice::from_mut(&mut rng));
        let sample = model.sample_forward(&mut ctx2, &batch, None);
        assert_eq!(tape2.value(sample).shape(), (T_PRED, 2));
    }

    #[test]
    fn batched_pass_covers_ragged_windows() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(9);
        let model = PecNet::new(&mut store, &mut rng, BackboneConfig::default());
        let solo: Vec<Point> = (0..T_TOTAL).map(|t| [0.2 * t as f32, 0.5]).collect();
        let ws = [
            toy_window(0.4),
            TrajWindow::from_world(&solo, &[], DomainId::Sdd),
            toy_window(0.1),
        ];
        let batch = WindowBatch::new(ws.iter().collect(), vec![0, 1, 2]);
        let mut rngs: Vec<Rng> = (0..3).map(|i| Rng::seed_from(i as u64)).collect();
        let mut tape = Tape::new();
        let mut ctx = ForwardCtx::train(&store, &mut tape, &mut rngs);
        let (pred, loss) = model.train_forward(&mut ctx, &batch, None);
        assert_eq!(tape.value(pred).shape(), (T_PRED * 3, 2));
        assert!(tape.value(loss).item().is_finite());
        let grads = tape.backward(loss);
        assert!(tape.param_grads(&grads).iter().all(|(_, g)| g.all_finite()));
    }

    #[test]
    fn training_reduces_loss_on_fixed_window() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(1);
        let model = PecNet::new(&mut store, &mut rng, BackboneConfig::default());
        let w = toy_window(0.4);
        let mut opt = Adam::new(3e-3);
        let mut first = 0.0;
        let mut last = 0.0;
        for it in 0..120 {
            let batch = WindowBatch::single(&w, 0);
            let mut tape = Tape::new();
            let mut ctx = ForwardCtx::train(&store, &mut tape, std::slice::from_mut(&mut rng));
            let (_, loss) = model.train_forward(&mut ctx, &batch, None);
            let grads = tape.backward(loss);
            let mut buf = GradBuffer::new();
            buf.absorb(&tape, &grads);
            buf.clip_global_norm(5.0);
            opt.step(&mut store, &buf);
            let v = tape.value(loss).item();
            if it == 0 {
                first = v;
            }
            last = v;
        }
        assert!(last < first * 0.5, "loss did not drop: {first} -> {last}");
    }

    #[test]
    fn sampling_is_stochastic() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(2);
        let model = PecNet::new(&mut store, &mut rng, BackboneConfig::default());
        let w = toy_window(0.3);
        let batch = WindowBatch::single(&w, 0);
        let mut t1 = Tape::new();
        let mut c1 = ForwardCtx::sample(&store, &mut t1, std::slice::from_mut(&mut rng));
        let s1 = model.sample_forward(&mut c1, &batch, None);
        let mut t2 = Tape::new();
        let mut c2 = ForwardCtx::sample(&store, &mut t2, std::slice::from_mut(&mut rng));
        let s2 = model.sample_forward(&mut c2, &batch, None);
        assert_ne!(
            t1.value(s1).data(),
            t2.value(s2).data(),
            "different latent draws must produce different futures"
        );
    }

    #[test]
    fn extra_conditioning_is_enforced_and_used() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(3);
        let cfg = BackboneConfig::default().with_extra(6);
        let model = PecNet::new(&mut store, &mut rng, cfg);
        let w = toy_window(0.4);
        let batch = WindowBatch::single(&w, 0);
        let mut tape = Tape::new();
        let enc = model.encode(&store, &mut tape, &batch);
        let e1 = tape.constant(Tensor::zeros(1, 6));
        let e2 = tape.constant(Tensor::full(1, 6, 2.0));
        let mut ctx = ForwardCtx::sample(&store, &mut tape, std::slice::from_mut(&mut rng));
        let g1 = model.generate(&mut ctx, &batch, &enc, Some(e1));
        let g2 = model.generate(&mut ctx, &batch, &enc, Some(e2));
        assert_ne!(
            tape.value(g1.pred).data(),
            tape.value(g2.pred).data(),
            "extra features must influence the rollout"
        );
    }

    #[test]
    #[should_panic(expected = "extra conditioning must match")]
    fn missing_extra_panics() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(4);
        let cfg = BackboneConfig::default().with_extra(6);
        let model = PecNet::new(&mut store, &mut rng, cfg);
        let w = toy_window(0.4);
        let batch = WindowBatch::single(&w, 0);
        let mut tape = Tape::new();
        let enc = model.encode(&store, &mut tape, &batch);
        let mut ctx = ForwardCtx::sample(&store, &mut tape, std::slice::from_mut(&mut rng));
        model.generate(&mut ctx, &batch, &enc, None);
    }
}
