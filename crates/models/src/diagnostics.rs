//! Per-domain gradient diagnostics feeding the health observatory
//! (`adaptraj_obs::health`).
//!
//! Both training loops — `adaptraj-core`'s three-step AdapTraj schedule
//! and [`crate::trainer::Trainer`] — reduce worker gradients in
//! batch-position order. [`HealthAccum`] rides that reduction: while the
//! observatory is enabled it additionally accumulates each window's
//! gradient pairs into a per-source-domain [`GradBuffer`], and at epoch
//! end emits the per-domain L2 norms, all pairwise cosine similarities
//! (the negative-transfer signal), and per-parameter-group
//! update-to-weight ratios as one [`EpochHealth`] record. Every
//! accumulation happens on the dispatcher thread in batch-position
//! order, so the emitted series are bit-identical for any worker count.
//!
//! While the observatory is disabled, construction is one relaxed atomic
//! load and every method is a no-op — training pays nothing.

use crate::predictor::group_label;
use adaptraj_obs::health::{self, DomainCosine, DomainNorm, EpochHealth, GroupRatio};
use adaptraj_tensor::{GradBuffer, ParamId, ParamStore, Tensor};

/// L2 norm of a gradient buffer, accumulated in `f64` (deterministic:
/// slot order is parameter-id order).
pub fn grad_norm_f64(buf: &GradBuffer) -> f64 {
    let mut sq = 0.0f64;
    for (_, g) in buf.iter() {
        for &x in g.data() {
            sq += x as f64 * x as f64;
        }
    }
    sq.sqrt()
}

/// Cosine similarity between two accumulated gradient buffers, over the
/// parameters present in both. Zero when either buffer has zero norm.
pub fn grad_cosine(a: &GradBuffer, b: &GradBuffer) -> f64 {
    let mut dot = 0.0f64;
    for (id, ga) in a.iter() {
        if let Some(gb) = b.get(id) {
            for (&x, &y) in ga.data().iter().zip(gb.data()) {
                dot += x as f64 * y as f64;
            }
        }
    }
    let (na, nb) = (grad_norm_f64(a), grad_norm_f64(b));
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Per-parameter-group update-to-weight ratios `‖Δw‖ / ‖w_before‖` for
/// one optimizer step, given the parameter snapshot taken before the
/// step. Groups are reported in ascending group-id order; a group whose
/// pre-step weights have zero norm reports ratio 0.
pub fn update_ratios(store: &ParamStore, before: &[Tensor]) -> Vec<GroupRatio> {
    // (group, delta_sq, weight_sq), sorted by group id at the end.
    let mut acc: Vec<(u32, f64, f64)> = Vec::new();
    for (id, prev) in store.ids().zip(before) {
        let g = store.group(id).0;
        let i = match acc.iter().position(|(gg, _, _)| *gg == g) {
            Some(i) => i,
            None => {
                acc.push((g, 0.0, 0.0));
                acc.len() - 1
            }
        };
        for (&now, &was) in store.value(id).data().iter().zip(prev.data()) {
            let d = now as f64 - was as f64;
            acc[i].1 += d * d;
            acc[i].2 += was as f64 * was as f64;
        }
    }
    acc.sort_by_key(|(g, _, _)| *g);
    acc.into_iter()
        .map(|(g, d_sq, w_sq)| GroupRatio {
            group: group_label(adaptraj_tensor::GroupId(g)).to_string(),
            ratio: if w_sq > 0.0 {
                d_sq.sqrt() / w_sq.sqrt()
            } else {
                0.0
            },
        })
        .collect()
}

/// One epoch's worth of per-domain gradient accumulation. Inert while
/// the health observatory is disabled.
#[derive(Debug)]
pub struct HealthAccum {
    enabled: bool,
    epoch: u64,
    phase: String,
    domains: Vec<(String, GradBuffer)>,
    ratios: Vec<GroupRatio>,
}

impl HealthAccum {
    /// Starts an epoch accumulator over `domains` (source-domain names in
    /// a fixed order — the emitted series follow it).
    pub fn new<I, S>(epoch: u64, phase: &str, domains: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let enabled = health::health_enabled();
        HealthAccum {
            enabled,
            epoch,
            phase: if enabled {
                phase.to_string()
            } else {
                String::new()
            },
            domains: if enabled {
                domains
                    .into_iter()
                    .map(|d| (d.into(), GradBuffer::new()))
                    .collect()
            } else {
                Vec::new()
            },
            ratios: Vec::new(),
        }
    }

    /// Mirrors one window's gradient contribution into its domain's
    /// buffer. Call from the batch-position-order reduction, right next
    /// to the main buffer's `absorb_pairs_scaled`.
    pub fn absorb(&mut self, domain: &str, pairs: &[(ParamId, Tensor)], alpha: f32) {
        if !self.enabled {
            return;
        }
        if let Some((_, buf)) = self.domains.iter_mut().find(|(d, _)| d == domain) {
            buf.absorb_pairs_scaled(pairs, alpha);
        }
    }

    /// Snapshot hook for the update-to-weight ratios: call just before
    /// the epoch's *final* optimizer step. Returns `None` (no snapshot
    /// cost) unless enabled and `last_batch`.
    pub fn pre_step(&self, store: &ParamStore, last_batch: bool) -> Option<Vec<Tensor>> {
        if self.enabled && last_batch {
            Some(store.snapshot())
        } else {
            None
        }
    }

    /// Consumes the pre-step snapshot after the optimizer step ran.
    pub fn post_step(&mut self, store: &ParamStore, before: Option<Vec<Tensor>>) {
        if let Some(before) = before {
            self.ratios = update_ratios(store, &before);
        }
    }

    /// Emits the epoch's [`EpochHealth`] record (norms, pairwise
    /// cosines, update ratios) into the health record stream and the
    /// metrics registry, then retires the domain buffers into the pool.
    pub fn finish(self) {
        if !self.enabled {
            return;
        }
        let norms: Vec<DomainNorm> = self
            .domains
            .iter()
            .map(|(d, buf)| DomainNorm {
                domain: d.clone(),
                grad_norm: grad_norm_f64(buf),
            })
            .collect();
        let mut cosines = Vec::new();
        for i in 0..self.domains.len() {
            for j in (i + 1)..self.domains.len() {
                cosines.push(DomainCosine {
                    a: self.domains[i].0.clone(),
                    b: self.domains[j].0.clone(),
                    cosine: grad_cosine(&self.domains[i].1, &self.domains[j].1),
                });
            }
        }
        health::record_epoch(EpochHealth {
            epoch: self.epoch,
            phase: self.phase,
            domains: norms,
            cosines,
            update_ratios: self.ratios,
        });
        for (_, buf) in self.domains {
            buf.recycle();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptraj_tensor::{GroupId, Tensor};

    fn store_with_two_groups() -> (ParamStore, ParamId, ParamId) {
        let mut store = ParamStore::new();
        let a = store.register("a", Tensor::row(&[1.0, 2.0]), GroupId(0));
        let b = store.register("b", Tensor::row(&[3.0]), GroupId(3));
        (store, a, b)
    }

    #[test]
    fn cosine_of_aligned_and_opposed_buffers() {
        let (_, a, b) = store_with_two_groups();
        let mut ga = GradBuffer::new();
        ga.absorb_pairs_scaled(
            &[(a, Tensor::row(&[1.0, 0.0])), (b, Tensor::row(&[2.0]))],
            1.0,
        );
        let mut gb = GradBuffer::new();
        gb.absorb_pairs_scaled(
            &[(a, Tensor::row(&[1.0, 0.0])), (b, Tensor::row(&[2.0]))],
            1.0,
        );
        assert!((grad_cosine(&ga, &gb) - 1.0).abs() < 1e-12);

        let mut gc = GradBuffer::new();
        gc.absorb_pairs_scaled(
            &[(a, Tensor::row(&[-1.0, 0.0])), (b, Tensor::row(&[-2.0]))],
            1.0,
        );
        assert!((grad_cosine(&ga, &gc) + 1.0).abs() < 1e-12);
        assert_eq!(grad_cosine(&ga, &GradBuffer::new()), 0.0);
    }

    #[test]
    fn update_ratios_measure_relative_weight_change() {
        let (mut store, a, _) = store_with_two_groups();
        let before = store.snapshot();
        // Move group-0's "a" from (1,2) to (1.1, 2.0): ‖Δw‖ = 0.1.
        let id = a;
        store.value_mut(id).data_mut()[0] = 1.1;
        let ratios = update_ratios(&store, &before);
        assert_eq!(ratios.len(), 2);
        assert_eq!(ratios[0].group, "backbone");
        let expected = 0.1f64 / (1.0f64 + 4.0).sqrt();
        assert!((ratios[0].ratio - expected).abs() < 1e-6, "{ratios:?}");
        assert_eq!(ratios[1].group, "aggregator");
        assert_eq!(ratios[1].ratio, 0.0);
    }

    #[test]
    fn disabled_accumulator_is_inert() {
        health::set_enabled(false);
        let mut acc = HealthAccum::new(0, "step1", ["x".to_string()]);
        let (_, a, _) = store_with_two_groups();
        acc.absorb("x", &[(a, Tensor::row(&[1.0, 1.0]))], 1.0);
        assert!(acc.domains.is_empty());
        acc.finish();
    }
}
