//! Integration test of the framework's central claim: after training,
//! the domain-*specific* features separate source domains while the
//! domain-*invariant* features (trained adversarially) separate them
//! less — the four-feature disentanglement of Fig. 2.

use adaptraj_core::{AdapTraj, AdapTrajConfig};
use adaptraj_data::domain::DomainId;
use adaptraj_data::trajectory::{Point, TrajWindow, T_TOTAL};
use adaptraj_models::{Backbone, BackboneConfig, PecNet, Predictor, TrainerConfig};
use adaptraj_tensor::{Tape, Tensor};

const SOURCES: [DomainId; 2] = [DomainId::LCas, DomainId::Syi];

/// Two synthetic domains with very different speeds (slow horizontal vs
/// fast vertical), mirroring the L-CAS / SYI contrast.
fn window(domain: DomainId, idx: usize) -> TrajWindow {
    let jitter = (idx % 7) as f32 * 0.01;
    let (vx, vy) = match domain {
        DomainId::LCas => (0.1 + jitter, 0.01),
        _ => (0.05, 0.9 + jitter),
    };
    let focal: Vec<Point> = (0..T_TOTAL)
        .map(|t| [vx * t as f32, vy * t as f32])
        .collect();
    TrajWindow::from_world(&focal, &[], domain)
}

/// Centroid-distance separation score of per-domain feature clouds:
/// inter-centroid distance divided by mean intra-cluster spread. Higher
/// means the features separate the domains more.
fn separation(features: &[(DomainId, Tensor)]) -> f32 {
    let centroid = |d: DomainId| -> Tensor {
        let members: Vec<&Tensor> = features
            .iter()
            .filter(|(dom, _)| *dom == d)
            .map(|(_, t)| t)
            .collect();
        Tensor::concat_rows(&members).mean_rows()
    };
    let c0 = centroid(SOURCES[0]);
    let c1 = centroid(SOURCES[1]);
    let inter = c0.sub(&c1).frob_sq().sqrt();
    let spread: f32 = features
        .iter()
        .map(|(d, t)| {
            let c = if *d == SOURCES[0] { &c0 } else { &c1 };
            t.sub(c).frob_sq().sqrt()
        })
        .sum::<f32>()
        / features.len() as f32;
    inter / spread.max(1e-6)
}

/// Trains a model with the given adversarial-similarity weight and
/// returns the domain separation of its *invariant* individual features
/// on held-out windows.
fn invariant_separation_with_gamma(gamma: f32) -> f32 {
    let cfg = AdapTrajConfig {
        trainer: TrainerConfig {
            epochs: 8,
            batch_size: 16,
            max_train_windows: 40,
            ..TrainerConfig::default()
        },
        e_start: 5,
        e_end: 7,
        // Strong feature-shaping losses for this focused test.
        delta: 2.0,
        delta_prime: 0.5,
        gamma,
        ..AdapTrajConfig::default()
    };
    let mut model = AdapTraj::new(cfg, &SOURCES, |s, r, extra| {
        PecNet::new(s, r, BackboneConfig::default().with_extra(extra))
    });
    let train: Vec<TrajWindow> = (0..40).map(|i| window(SOURCES[i % 2], i)).collect();
    model.fit(&train);

    let mut inv_feats = Vec::new();
    for i in 100..130 {
        let d = SOURCES[i % 2];
        let w = window(d, i);
        let mut tape = Tape::new();
        let batch = adaptraj_data::WindowBatch::single(&w, 0);
        let enc = model.backbone().encode(model.store(), &mut tape, &batch);
        let expert = if d == SOURCES[0] { 0 } else { 1 };
        let feats = model.features(&mut tape, &enc, Some(expert));
        inv_feats.push((d, tape.value(feats.inv_ind).clone()));
    }
    separation(&inv_feats)
}

#[test]
fn invariant_features_remain_domain_separable_sanity() {
    // Smoke-level sanity of the measurement pipeline itself: with obvious
    // toy domains, features of a trained model separate them (the A/B
    // effect of γ is covered by the precise gradient-direction test
    // below; at this scale the aggregate measure saturates).
    let sep = invariant_separation_with_gamma(0.0);
    assert!(sep > 1.0, "toy domains should separate: {sep}");
}

#[test]
fn gradient_reversal_makes_similarity_loss_adversarial() {
    // The defining property of the adversarial similarity loss: following
    // the (optimizer-visible) gradient *descends* the loss w.r.t. the
    // specific features but *ascends* it w.r.t. the invariant features —
    // the invariant extractor is trained to defeat the classifier.
    use adaptraj_core::losses::similarity_loss;
    use adaptraj_core::{DomainClassifier, Features};
    use adaptraj_tensor::{ParamStore, Rng};

    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from(0);
    let f = 8;
    let clf = DomainClassifier::new(&mut store, &mut rng, f, 2);

    let mk = |rng: &mut Rng| Tensor::randn(1, f, 0.0, 1.0, rng);
    let (inv_i0, inv_n0, spec_i0, spec_n0) =
        (mk(&mut rng), mk(&mut rng), mk(&mut rng), mk(&mut rng));

    let eval_loss = |inv_i: &Tensor, spec_i: &Tensor| -> (f32, Tensor, Tensor) {
        let mut tape = Tape::new();
        let feats = Features {
            inv_ind: tape.input(inv_i.clone()),
            inv_nei: tape.input(inv_n0.clone()),
            spec_ind: tape.input(spec_i.clone()),
            spec_nei: tape.input(spec_n0.clone()),
        };
        let loss = similarity_loss(&store, &mut tape, &clf, &feats, 0);
        let grads = tape.backward(loss);
        (
            tape.value(loss).item(),
            grads.expect(feats.inv_ind).clone(),
            grads.expect(feats.spec_ind).clone(),
        )
    };

    let (l0, g_inv, g_spec) = eval_loss(&inv_i0, &spec_i0);
    let lr = 0.05;

    // Descend the reported gradient on the specific features → loss drops.
    let mut spec_stepped = spec_i0.clone();
    spec_stepped.axpy(-lr, &g_spec);
    let (l_spec, _, _) = eval_loss(&inv_i0, &spec_stepped);
    assert!(
        l_spec < l0,
        "specific descent should reduce loss: {l0} -> {l_spec}"
    );

    // Descend the reported gradient on the invariant features → loss RISES
    // (the gradient was reversed: the optimizer unknowingly does ascent).
    let mut inv_stepped = inv_i0.clone();
    inv_stepped.axpy(-lr, &g_inv);
    let (l_inv, _, _) = eval_loss(&inv_stepped, &spec_i0);
    assert!(
        l_inv > l0,
        "invariant descent should increase loss (adversarial): {l0} -> {l_inv}"
    );
}
