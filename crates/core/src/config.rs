//! AdapTraj hyperparameters (Sec. III-E and Alg. 1).

use adaptraj_models::TrainerConfig;
use adaptraj_tensor::GroupId;

/// Parameter group of the domain-invariant extractor (V_ind, V_nei,
/// V_fuse).
pub const INVARIANT_GROUP: GroupId = GroupId(1);
/// Parameter group of the domain-specific extractors ({M_ind^k},
/// {M_nei^k}, M_fuse).
pub const SPECIFIC_GROUP: GroupId = GroupId(2);
/// Parameter group of the domain-specific aggregator (A_ind, A_nei).
pub const AGGREGATOR_GROUP: GroupId = GroupId(3);
/// Parameter group of the auxiliary heads (D_recon, D_class).
pub const AUX_GROUP: GroupId = GroupId(4);

/// Ablation switches (Sec. IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ablation {
    /// `false` = the "w/o invariant" variant.
    pub use_invariant: bool,
    /// `false` = the "w/o specific" variant.
    pub use_specific: bool,
}

impl Default for Ablation {
    fn default() -> Self {
        Self {
            use_invariant: true,
            use_specific: true,
        }
    }
}

/// All AdapTraj hyperparameters. Loss weights α, β, γ default to the
/// paper's values (Sec. IV-A.4); the schedule fractions follow the shapes
/// reported in the sensitivity analysis (Fig. 4).
#[derive(Debug, Clone)]
pub struct AdapTrajConfig {
    /// Width of each extracted feature (H_i^i, H_ℰ^i, H_i^s, H_ℰ^s).
    pub feat_dim: usize,
    /// Width of each fused feature (H^i, H^s). The backbone's
    /// `extra_dim` must equal `2 * fused_dim`.
    pub fused_dim: usize,
    /// Weight of `L_recon` (paper: 0.01).
    pub alpha: f32,
    /// Weight of `L_diff` (paper: 0.075).
    pub beta: f32,
    /// Weight of `L_similar` (paper: 0.25).
    pub gamma: f32,
    /// Domain weight δ on `L_ours` in step 1 (Eq. 23).
    pub delta: f32,
    /// Reduced domain weight δ' in steps 2–3 (Eq. 25).
    pub delta_prime: f32,
    /// Epoch at which aggregator training begins (end of step 1).
    pub e_start: usize,
    /// Epoch at which joint fine-tuning begins (end of step 2).
    pub e_end: usize,
    /// Aggregator ratio σ: probability of masking the domain label in
    /// steps 2–3 (teacher–student).
    pub sigma: f32,
    /// Learning-rate fraction for non-aggregator modules in steps 2–3.
    pub f_low: f32,
    /// Learning-rate fraction for the aggregator in step 2.
    pub f_high: f32,
    /// Weight of the teacher–student distillation term pulling the
    /// aggregator's output toward the true domain's expert output on
    /// masked samples (the Sec. III-D teacher–student process).
    pub distill_weight: f32,
    /// Ablation switches.
    pub ablation: Ablation,
    /// Base optimization settings (`epochs` here is `e_total`).
    pub trainer: TrainerConfig,
}

impl Default for AdapTrajConfig {
    fn default() -> Self {
        let trainer = TrainerConfig::default();
        let e_total = trainer.epochs;
        Self {
            feat_dim: 16,
            fused_dim: 16,
            alpha: 0.01,
            beta: 0.075,
            gamma: 0.25,
            delta: 0.5,
            delta_prime: 0.05,
            e_start: e_total * 2 / 5,
            e_end: e_total * 7 / 10,
            sigma: 0.7,
            f_low: 0.5,
            f_high: 2.0,
            distill_weight: 1.0,
            ablation: Ablation::default(),
            trainer,
        }
    }
}

impl AdapTrajConfig {
    /// Quick settings for unit tests.
    pub fn smoke() -> Self {
        let trainer = TrainerConfig::smoke();
        let e_total = trainer.epochs.max(3);
        Self {
            trainer: TrainerConfig {
                epochs: e_total,
                ..trainer
            },
            e_start: e_total / 3,
            e_end: e_total * 2 / 3,
            ..Default::default()
        }
    }

    /// Total epochs `e_total`.
    pub fn e_total(&self) -> usize {
        self.trainer.epochs
    }

    /// The `extra_dim` the wrapped backbone must be constructed with.
    pub fn extra_dim(&self) -> usize {
        2 * self.fused_dim
    }

    /// Which training step (1, 2, or 3 per Alg. 1) an epoch belongs to.
    pub fn step_of_epoch(&self, epoch: usize) -> usize {
        if epoch < self.e_start {
            1
        } else if epoch < self.e_end {
            2
        } else {
            3
        }
    }

    /// Validates schedule consistency.
    pub fn validate(&self) {
        assert!(
            self.e_start <= self.e_end && self.e_end <= self.e_total(),
            "schedule must satisfy e_start <= e_end <= e_total ({} <= {} <= {})",
            self.e_start,
            self.e_end,
            self.e_total()
        );
        assert!((0.0..=1.0).contains(&self.sigma), "sigma in [0,1]");
        assert!(self.feat_dim > 0 && self.fused_dim > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_loss_weights() {
        let c = AdapTrajConfig::default();
        assert_eq!(c.alpha, 0.01);
        assert_eq!(c.beta, 0.075);
        assert_eq!(c.gamma, 0.25);
        c.validate();
    }

    #[test]
    fn step_boundaries() {
        let c = AdapTrajConfig {
            e_start: 2,
            e_end: 4,
            trainer: TrainerConfig {
                epochs: 6,
                ..TrainerConfig::smoke()
            },
            ..Default::default()
        };
        assert_eq!(c.step_of_epoch(0), 1);
        assert_eq!(c.step_of_epoch(1), 1);
        assert_eq!(c.step_of_epoch(2), 2);
        assert_eq!(c.step_of_epoch(3), 2);
        assert_eq!(c.step_of_epoch(4), 3);
        assert_eq!(c.step_of_epoch(5), 3);
    }

    #[test]
    #[should_panic(expected = "schedule must satisfy")]
    fn validate_rejects_inverted_schedule() {
        let c = AdapTrajConfig {
            e_start: 10,
            e_end: 2,
            ..AdapTrajConfig::smoke()
        };
        c.validate();
    }

    #[test]
    fn extra_dim_is_two_fused() {
        assert_eq!(AdapTrajConfig::default().extra_dim(), 32);
    }

    #[test]
    fn groups_are_distinct() {
        use adaptraj_models::BACKBONE_GROUP;
        let all = [
            BACKBONE_GROUP,
            INVARIANT_GROUP,
            SPECIFIC_GROUP,
            AGGREGATOR_GROUP,
            AUX_GROUP,
        ];
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert_ne!(all[i], all[j]);
            }
        }
    }
}
