//! The AdapTraj loss terms (Eqs. 12–20, 24).

use crate::config::AdapTrajConfig;
use crate::extractors::Features;
use crate::heads::{DomainClassifier, ReconDecoder};
use adaptraj_data::WindowBatch;
use adaptraj_models::backbone::batch_obs_flat_tensor;
use adaptraj_tensor::{ParamStore, Tape, Tensor, Var};

/// `L_recon` (Eqs. 12–14): scale-invariant MSE between the observed focal
/// tracks and their reconstruction from `[H_i^i | H_i^s]`, averaged over
/// the batch.
///
/// SIMSE is a *per-window* quantity — `(1/m)‖d_b‖² − (1/m²)(Σd_b)²` with
/// `m = T_OBS·2` — so the batched form computes each row's SIMSE and takes
/// the batch mean, rather than applying whole-tensor SIMSE to the `[B, m]`
/// stack (which would couple the rows through the shared-mean term).
pub fn recon_loss(
    store: &ParamStore,
    tape: &mut Tape,
    recon: &ReconDecoder,
    feats: &Features,
    batch: &WindowBatch<'_>,
) -> Var {
    let x_hat = recon.forward(store, tape, feats.inv_ind, feats.spec_ind);
    let target = tape.constant(batch_obs_flat_tensor(batch));
    let m = tape.value(x_hat).cols();
    let d = tape.sub(x_hat, target);
    let ones = tape.constant(Tensor::ones(m, 1));
    let d_sq = tape.mul(d, d);
    let row_l2 = tape.matmul(d_sq, ones); // [B,1] Σ d²
    let term1 = tape.scale(row_l2, 1.0 / m as f32);
    let row_sum = tape.matmul(d, ones); // [B,1] Σ d
    let row_sum_sq = tape.mul(row_sum, row_sum);
    let term2 = tape.scale(row_sum_sq, 1.0 / (m * m) as f32);
    let per_row = tape.sub(term1, term2);
    tape.mean_rows(per_row)
}

/// Strength of the gradient reversal applied to the invariant features in
/// the adversarial similarity loss.
const GRL_LAMBDA: f32 = 1.0;

/// `L_similar` (Eqs. 15–16): the domain **adversarial** similarity loss.
///
/// Following the Domain Separation Networks design the paper builds on,
/// the classifier is trained to predict the source domain from all four
/// features, while a gradient-reversal layer on the *invariant* features
/// trains V_ind/V_nei (and the backbone beneath them) to make that
/// prediction impossible — this is what makes the invariant features
/// actually invariant across domains. The *specific* features receive the
/// ordinary gradient and therefore learn to be domain-discriminative.
pub fn similarity_loss(
    store: &ParamStore,
    tape: &mut Tape,
    classifier: &DomainClassifier,
    feats: &Features,
    domain_idx: usize,
) -> Var {
    let inv_ind = tape.grad_reverse(feats.inv_ind, GRL_LAMBDA);
    let inv_nei = tape.grad_reverse(feats.inv_nei, GRL_LAMBDA);
    let logits = classifier.forward(
        store,
        tape,
        inv_ind,
        inv_nei,
        feats.spec_ind,
        feats.spec_nei,
    );
    // Jobs are domain-homogeneous, so one label covers every batched row;
    // `softmax_cross_entropy` is the mean over rows.
    let b = tape.value(logits).rows();
    tape.softmax_cross_entropy(logits, &vec![domain_idx; b])
}

/// `L_diff` (Eq. 20): soft subspace orthogonality between invariant and
/// specific features, for both the focal agent and the neighbors,
/// averaged over the batch.
///
/// The paper states the constraint as `‖H^{iᵀ} H^s‖_F²` over feature
/// matrices; for the per-window `[1, d]` feature rows used here that Gram
/// reduces to the squared inner product `(H^i · H^s)²` — zero exactly when
/// the two features are orthogonal (the outer-product Frobenius norm
/// would instead penalize feature magnitude). For a `[B, d]` batch the
/// constraint is per-window: row-wise dots (never `H^i H^{sᵀ}`, whose
/// off-diagonals would couple different windows), squared, batch-meaned.
pub fn difference_loss(tape: &mut Tape, feats: &Features) -> Var {
    let d = tape.value(feats.inv_ind).cols();
    let ones = tape.constant(Tensor::ones(d, 1));
    let dot_sq = |tape: &mut Tape, a: Var, b: Var| {
        let prod = tape.mul(a, b);
        let dot = tape.matmul(prod, ones); // [B,1] row-wise inner products
        tape.mul(dot, dot)
    };
    let ind = dot_sq(tape, feats.inv_ind, feats.spec_ind);
    let nei = dot_sq(tape, feats.inv_nei, feats.spec_nei);
    let sum = tape.add(ind, nei);
    tape.mean_rows(sum)
}

/// `L_ours` decomposed into its terms: the weighted total plus the raw
/// (unweighted) component nodes, so telemetry can report each term's
/// magnitude without re-running the forward pass. `diff` is `None` when an
/// ablation drops the orthogonality constraint.
#[derive(Debug, Clone, Copy)]
pub struct OursLossParts {
    pub total: Var,
    pub recon: Var,
    pub diff: Option<Var>,
    pub similar: Var,
}

/// `L_ours = α·L_recon + β·L_diff + γ·L_similar` (Eq. 24), with terms
/// dropped according to the ablation switches ("w/o invariant" and
/// "w/o specific" both lose the orthogonality constraint since it needs
/// both feature families).
#[allow(clippy::too_many_arguments)]
pub fn ours_loss(
    store: &ParamStore,
    tape: &mut Tape,
    cfg: &AdapTrajConfig,
    recon: &ReconDecoder,
    classifier: &DomainClassifier,
    feats: &Features,
    batch: &WindowBatch<'_>,
    domain_idx: usize,
) -> Var {
    ours_loss_parts(
        store, tape, cfg, recon, classifier, feats, batch, domain_idx,
    )
    .total
}

/// [`ours_loss`] returning the individual terms alongside the total.
#[allow(clippy::too_many_arguments)]
pub fn ours_loss_parts(
    store: &ParamStore,
    tape: &mut Tape,
    cfg: &AdapTrajConfig,
    recon: &ReconDecoder,
    classifier: &DomainClassifier,
    feats: &Features,
    batch: &WindowBatch<'_>,
    domain_idx: usize,
) -> OursLossParts {
    let l_recon = recon_loss(store, tape, recon, feats, batch);
    let mut total = tape.scale(l_recon, cfg.alpha);
    let l_diff = if cfg.ablation.use_invariant && cfg.ablation.use_specific {
        let l_diff = difference_loss(tape, feats);
        let weighted = tape.scale(l_diff, cfg.beta);
        total = tape.add(total, weighted);
        Some(l_diff)
    } else {
        None
    };
    let l_sim = similarity_loss(store, tape, classifier, feats, domain_idx);
    let weighted = tape.scale(l_sim, cfg.gamma);
    OursLossParts {
        total: tape.add(total, weighted),
        recon: l_recon,
        diff: l_diff,
        similar: l_sim,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptraj_data::domain::DomainId;
    use adaptraj_data::trajectory::{Point, TrajWindow, T_TOTAL};
    use adaptraj_tensor::Rng;

    const F: usize = 8;

    fn toy_window() -> TrajWindow {
        let focal: Vec<Point> = (0..T_TOTAL).map(|t| [0.2 * t as f32, 0.0]).collect();
        TrajWindow::from_world(&focal, &[], DomainId::EthUcy)
    }

    fn toy_features(tape: &mut Tape, rng: &mut Rng) -> Features {
        Features {
            inv_ind: tape.input(Tensor::randn(1, F, 0.0, 1.0, rng)),
            inv_nei: tape.input(Tensor::randn(1, F, 0.0, 1.0, rng)),
            spec_ind: tape.input(Tensor::randn(1, F, 0.0, 1.0, rng)),
            spec_nei: tape.input(Tensor::randn(1, F, 0.0, 1.0, rng)),
        }
    }

    #[test]
    fn difference_loss_zero_for_orthogonal_features() {
        let mut tape = Tape::new();
        let mut e1 = vec![0.0; F];
        e1[0] = 1.0;
        let mut e2 = vec![0.0; F];
        e2[1] = 1.0;
        let feats = Features {
            inv_ind: tape.input(Tensor::row(&e1)),
            spec_ind: tape.input(Tensor::row(&e2)),
            inv_nei: tape.input(Tensor::row(&e1)),
            spec_nei: tape.input(Tensor::row(&e2)),
        };
        let l = difference_loss(&mut tape, &feats);
        assert!(tape.value(l).item() < 1e-9);
    }

    #[test]
    fn difference_loss_positive_for_parallel_features() {
        let mut tape = Tape::new();
        let v = Tensor::row(&[1.0; F]);
        let feats = Features {
            inv_ind: tape.input(v.clone()),
            spec_ind: tape.input(v.clone()),
            inv_nei: tape.input(v.clone()),
            spec_nei: tape.input(v),
        };
        let l = difference_loss(&mut tape, &feats);
        assert!(tape.value(l).item() > 1.0);
    }

    #[test]
    fn minimizing_difference_loss_decorrelates() {
        // Gradient descent on L_diff should drive the cosine similarity of
        // inv/spec features toward zero — the disentanglement invariant.
        let mut rng = Rng::seed_from(0);
        let mut inv = Tensor::randn(1, F, 0.5, 0.5, &mut rng);
        let mut spec = Tensor::randn(1, F, 0.5, 0.5, &mut rng);
        for _ in 0..400 {
            let mut tape = Tape::new();
            let feats = Features {
                inv_ind: tape.input(inv.clone()),
                spec_ind: tape.input(spec.clone()),
                inv_nei: tape.constant(Tensor::zeros(1, F)),
                spec_nei: tape.constant(Tensor::zeros(1, F)),
            };
            let l = difference_loss(&mut tape, &feats);
            let grads = tape.backward(l);
            inv.axpy(-0.01, grads.expect(feats.inv_ind));
            spec.axpy(-0.01, grads.expect(feats.spec_ind));
        }
        let dot: f32 = inv.data().iter().zip(spec.data()).map(|(a, b)| a * b).sum();
        assert!(dot.abs() < 0.05, "features still correlated: dot={dot}");
    }

    #[test]
    fn ours_loss_combines_terms_and_respects_ablation() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(1);
        let recon = ReconDecoder::new(&mut store, &mut rng, F);
        let clf = DomainClassifier::new(&mut store, &mut rng, F, 3);
        let w = toy_window();

        let batch = WindowBatch::single(&w, 0);
        let full_cfg = AdapTrajConfig::smoke();
        let mut no_spec = AdapTrajConfig::smoke();
        no_spec.ablation.use_specific = false;

        let mut t1 = Tape::new();
        let f1 = toy_features(&mut t1, &mut rng);
        let l_full = ours_loss(&store, &mut t1, &full_cfg, &recon, &clf, &f1, &batch, 0);
        assert!(t1.value(l_full).item().is_finite());

        // Without the specific family, the orthogonality term is dropped;
        // the loss composition differs.
        let mut t2 = Tape::new();
        let f2 = toy_features(&mut t2, &mut rng);
        let l_ablate = ours_loss(&store, &mut t2, &no_spec, &recon, &clf, &f2, &batch, 0);
        assert!(t2.value(l_ablate).item().is_finite());
    }

    #[test]
    fn ours_loss_parts_recompose_to_the_total() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(7);
        let recon = ReconDecoder::new(&mut store, &mut rng, F);
        let clf = DomainClassifier::new(&mut store, &mut rng, F, 3);
        let w = toy_window();
        let batch = WindowBatch::single(&w, 0);
        let cfg = AdapTrajConfig::smoke();
        let mut tape = Tape::new();
        let feats = toy_features(&mut tape, &mut rng);
        let parts = ours_loss_parts(&store, &mut tape, &cfg, &recon, &clf, &feats, &batch, 1);
        let total = tape.value(parts.total).item();
        let recomposed = cfg.alpha * tape.value(parts.recon).item()
            + cfg.beta
                * tape
                    .value(parts.diff.expect("full config keeps L_diff"))
                    .item()
            + cfg.gamma * tape.value(parts.similar).item();
        assert!(
            (total - recomposed).abs() < 1e-4 * (1.0 + total.abs()),
            "total {total} vs recomposed {recomposed}"
        );
    }

    #[test]
    fn batched_losses_equal_mean_of_per_window_losses() {
        // The per-row SIMSE / row-dot orthogonality / batched CE forms
        // must reduce to the mean of the corresponding per-window values.
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(9);
        let recon = ReconDecoder::new(&mut store, &mut rng, F);
        let clf = DomainClassifier::new(&mut store, &mut rng, F, 3);
        let cfg = AdapTrajConfig::smoke();
        let w1 = toy_window();
        let focal2: Vec<Point> = (0..T_TOTAL).map(|t| [0.1 * t as f32, 0.3]).collect();
        let w2 = TrajWindow::from_world(&focal2, &[], DomainId::EthUcy);
        let rows: Vec<Tensor> = (0..8)
            .map(|_| Tensor::randn(1, F, 0.0, 1.0, &mut rng))
            .collect();
        let stack = |offset: usize, idx: &[usize]| {
            let parts: Vec<&Tensor> = idx.iter().map(|&i| &rows[i + offset]).collect();
            Tensor::concat_rows(&parts)
        };
        let feats_of = |tape: &mut Tape, idx: &[usize]| Features {
            inv_ind: tape.input(stack(0, idx)),
            inv_nei: tape.input(stack(2, idx)),
            spec_ind: tape.input(stack(4, idx)),
            spec_nei: tape.input(stack(6, idx)),
        };
        let single = |w: &TrajWindow, id: usize| -> (f32, f32, f32) {
            let mut tape = Tape::new();
            let feats = feats_of(&mut tape, &[id]);
            let batch = WindowBatch::single(w, id as u64);
            let parts = ours_loss_parts(&store, &mut tape, &cfg, &recon, &clf, &feats, &batch, 1);
            (
                tape.value(parts.recon).item(),
                tape.value(parts.diff.unwrap()).item(),
                tape.value(parts.similar).item(),
            )
        };
        let (r1, d1, s1) = single(&w1, 0);
        let (r2, d2, s2) = single(&w2, 1);
        let mut tape = Tape::new();
        let feats = feats_of(&mut tape, &[0, 1]);
        let batch = WindowBatch::new(vec![&w1, &w2], vec![0, 1]);
        let parts = ours_loss_parts(&store, &mut tape, &cfg, &recon, &clf, &feats, &batch, 1);
        let close = |a: f32, b: f32| (a - b).abs() < 1e-5 * (1.0 + a.abs());
        assert!(close(tape.value(parts.recon).item(), (r1 + r2) / 2.0));
        assert!(close(
            tape.value(parts.diff.unwrap()).item(),
            (d1 + d2) / 2.0
        ));
        assert!(close(tape.value(parts.similar).item(), (s1 + s2) / 2.0));
    }

    #[test]
    fn recon_loss_trainable_to_near_zero() {
        use adaptraj_tensor::optim::Adam;
        use adaptraj_tensor::GradBuffer;
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(2);
        let recon = ReconDecoder::new(&mut store, &mut rng, F);
        let w = toy_window();
        let batch = WindowBatch::single(&w, 0);
        let fixed_inv = Tensor::randn(1, F, 0.0, 1.0, &mut rng);
        let fixed_spec = Tensor::randn(1, F, 0.0, 1.0, &mut rng);
        let mut opt = Adam::new(0.01);
        let mut last = f32::MAX;
        for _ in 0..300 {
            let mut tape = Tape::new();
            let feats = Features {
                inv_ind: tape.constant(fixed_inv.clone()),
                spec_ind: tape.constant(fixed_spec.clone()),
                inv_nei: tape.constant(Tensor::zeros(1, F)),
                spec_nei: tape.constant(Tensor::zeros(1, F)),
            };
            let l = recon_loss(&store, &mut tape, &recon, &feats, &batch);
            let grads = tape.backward(l);
            let mut buf = GradBuffer::new();
            buf.absorb(&tape, &grads);
            opt.step(&mut store, &buf);
            last = tape.value(l).item();
        }
        assert!(last < 0.01, "reconstruction stuck at {last}");
    }
}
