//! The AdapTraj loss terms (Eqs. 12–20, 24).

use crate::config::AdapTrajConfig;
use crate::extractors::Features;
use crate::heads::{DomainClassifier, ReconDecoder};
use adaptraj_data::trajectory::TrajWindow;
use adaptraj_models::backbone::obs_flat_tensor;
use adaptraj_tensor::{ParamStore, Tape, Var};

/// `L_recon` (Eqs. 12–14): scale-invariant MSE between the observed focal
/// track and its reconstruction from `[H_i^i | H_i^s]`.
pub fn recon_loss(
    store: &ParamStore,
    tape: &mut Tape,
    recon: &ReconDecoder,
    feats: &Features,
    w: &TrajWindow,
) -> Var {
    let x_hat = recon.forward(store, tape, feats.inv_ind, feats.spec_ind);
    let target = obs_flat_tensor(w);
    tape.simse_to(x_hat, &target)
}

/// Strength of the gradient reversal applied to the invariant features in
/// the adversarial similarity loss.
const GRL_LAMBDA: f32 = 1.0;

/// `L_similar` (Eqs. 15–16): the domain **adversarial** similarity loss.
///
/// Following the Domain Separation Networks design the paper builds on,
/// the classifier is trained to predict the source domain from all four
/// features, while a gradient-reversal layer on the *invariant* features
/// trains V_ind/V_nei (and the backbone beneath them) to make that
/// prediction impossible — this is what makes the invariant features
/// actually invariant across domains. The *specific* features receive the
/// ordinary gradient and therefore learn to be domain-discriminative.
pub fn similarity_loss(
    store: &ParamStore,
    tape: &mut Tape,
    classifier: &DomainClassifier,
    feats: &Features,
    domain_idx: usize,
) -> Var {
    let inv_ind = tape.grad_reverse(feats.inv_ind, GRL_LAMBDA);
    let inv_nei = tape.grad_reverse(feats.inv_nei, GRL_LAMBDA);
    let logits = classifier.forward(
        store,
        tape,
        inv_ind,
        inv_nei,
        feats.spec_ind,
        feats.spec_nei,
    );
    tape.softmax_cross_entropy(logits, &[domain_idx])
}

/// `L_diff` (Eq. 20): soft subspace orthogonality between invariant and
/// specific features, for both the focal agent and the neighbors.
///
/// The paper states the constraint as `‖H^{iᵀ} H^s‖_F²` over feature
/// matrices; for the per-window `[1, d]` feature rows used here that Gram
/// reduces to the squared inner product `(H^i · H^s)²` — zero exactly when
/// the two features are orthogonal (the outer-product Frobenius norm
/// would instead penalize feature magnitude).
pub fn difference_loss(tape: &mut Tape, feats: &Features) -> Var {
    let dot_sq = |tape: &mut Tape, a: Var, b: Var| {
        let dot = tape.matmul_nt(a, b);
        tape.mul(dot, dot)
    };
    let ind = dot_sq(tape, feats.inv_ind, feats.spec_ind);
    let nei = dot_sq(tape, feats.inv_nei, feats.spec_nei);
    tape.add(ind, nei)
}

/// `L_ours` decomposed into its terms: the weighted total plus the raw
/// (unweighted) component nodes, so telemetry can report each term's
/// magnitude without re-running the forward pass. `diff` is `None` when an
/// ablation drops the orthogonality constraint.
#[derive(Debug, Clone, Copy)]
pub struct OursLossParts {
    pub total: Var,
    pub recon: Var,
    pub diff: Option<Var>,
    pub similar: Var,
}

/// `L_ours = α·L_recon + β·L_diff + γ·L_similar` (Eq. 24), with terms
/// dropped according to the ablation switches ("w/o invariant" and
/// "w/o specific" both lose the orthogonality constraint since it needs
/// both feature families).
#[allow(clippy::too_many_arguments)]
pub fn ours_loss(
    store: &ParamStore,
    tape: &mut Tape,
    cfg: &AdapTrajConfig,
    recon: &ReconDecoder,
    classifier: &DomainClassifier,
    feats: &Features,
    w: &TrajWindow,
    domain_idx: usize,
) -> Var {
    ours_loss_parts(store, tape, cfg, recon, classifier, feats, w, domain_idx).total
}

/// [`ours_loss`] returning the individual terms alongside the total.
#[allow(clippy::too_many_arguments)]
pub fn ours_loss_parts(
    store: &ParamStore,
    tape: &mut Tape,
    cfg: &AdapTrajConfig,
    recon: &ReconDecoder,
    classifier: &DomainClassifier,
    feats: &Features,
    w: &TrajWindow,
    domain_idx: usize,
) -> OursLossParts {
    let l_recon = recon_loss(store, tape, recon, feats, w);
    let mut total = tape.scale(l_recon, cfg.alpha);
    let l_diff = if cfg.ablation.use_invariant && cfg.ablation.use_specific {
        let l_diff = difference_loss(tape, feats);
        let weighted = tape.scale(l_diff, cfg.beta);
        total = tape.add(total, weighted);
        Some(l_diff)
    } else {
        None
    };
    let l_sim = similarity_loss(store, tape, classifier, feats, domain_idx);
    let weighted = tape.scale(l_sim, cfg.gamma);
    OursLossParts {
        total: tape.add(total, weighted),
        recon: l_recon,
        diff: l_diff,
        similar: l_sim,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptraj_data::domain::DomainId;
    use adaptraj_data::trajectory::{Point, T_TOTAL};
    use adaptraj_tensor::{Rng, Tensor};

    const F: usize = 8;

    fn toy_window() -> TrajWindow {
        let focal: Vec<Point> = (0..T_TOTAL).map(|t| [0.2 * t as f32, 0.0]).collect();
        TrajWindow::from_world(&focal, &[], DomainId::EthUcy)
    }

    fn toy_features(tape: &mut Tape, rng: &mut Rng) -> Features {
        Features {
            inv_ind: tape.input(Tensor::randn(1, F, 0.0, 1.0, rng)),
            inv_nei: tape.input(Tensor::randn(1, F, 0.0, 1.0, rng)),
            spec_ind: tape.input(Tensor::randn(1, F, 0.0, 1.0, rng)),
            spec_nei: tape.input(Tensor::randn(1, F, 0.0, 1.0, rng)),
        }
    }

    #[test]
    fn difference_loss_zero_for_orthogonal_features() {
        let mut tape = Tape::new();
        let mut e1 = vec![0.0; F];
        e1[0] = 1.0;
        let mut e2 = vec![0.0; F];
        e2[1] = 1.0;
        let feats = Features {
            inv_ind: tape.input(Tensor::row(&e1)),
            spec_ind: tape.input(Tensor::row(&e2)),
            inv_nei: tape.input(Tensor::row(&e1)),
            spec_nei: tape.input(Tensor::row(&e2)),
        };
        let l = difference_loss(&mut tape, &feats);
        assert!(tape.value(l).item() < 1e-9);
    }

    #[test]
    fn difference_loss_positive_for_parallel_features() {
        let mut tape = Tape::new();
        let v = Tensor::row(&[1.0; F]);
        let feats = Features {
            inv_ind: tape.input(v.clone()),
            spec_ind: tape.input(v.clone()),
            inv_nei: tape.input(v.clone()),
            spec_nei: tape.input(v),
        };
        let l = difference_loss(&mut tape, &feats);
        assert!(tape.value(l).item() > 1.0);
    }

    #[test]
    fn minimizing_difference_loss_decorrelates() {
        // Gradient descent on L_diff should drive the cosine similarity of
        // inv/spec features toward zero — the disentanglement invariant.
        let mut rng = Rng::seed_from(0);
        let mut inv = Tensor::randn(1, F, 0.5, 0.5, &mut rng);
        let mut spec = Tensor::randn(1, F, 0.5, 0.5, &mut rng);
        for _ in 0..400 {
            let mut tape = Tape::new();
            let feats = Features {
                inv_ind: tape.input(inv.clone()),
                spec_ind: tape.input(spec.clone()),
                inv_nei: tape.constant(Tensor::zeros(1, F)),
                spec_nei: tape.constant(Tensor::zeros(1, F)),
            };
            let l = difference_loss(&mut tape, &feats);
            let grads = tape.backward(l);
            inv.axpy(-0.01, grads.expect(feats.inv_ind));
            spec.axpy(-0.01, grads.expect(feats.spec_ind));
        }
        let dot: f32 = inv.data().iter().zip(spec.data()).map(|(a, b)| a * b).sum();
        assert!(dot.abs() < 0.05, "features still correlated: dot={dot}");
    }

    #[test]
    fn ours_loss_combines_terms_and_respects_ablation() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(1);
        let recon = ReconDecoder::new(&mut store, &mut rng, F);
        let clf = DomainClassifier::new(&mut store, &mut rng, F, 3);
        let w = toy_window();

        let full_cfg = AdapTrajConfig::smoke();
        let mut no_spec = AdapTrajConfig::smoke();
        no_spec.ablation.use_specific = false;

        let mut t1 = Tape::new();
        let f1 = toy_features(&mut t1, &mut rng);
        let l_full = ours_loss(&store, &mut t1, &full_cfg, &recon, &clf, &f1, &w, 0);
        assert!(t1.value(l_full).item().is_finite());

        // Without the specific family, the orthogonality term is dropped;
        // the loss composition differs.
        let mut t2 = Tape::new();
        let f2 = toy_features(&mut t2, &mut rng);
        let l_ablate = ours_loss(&store, &mut t2, &no_spec, &recon, &clf, &f2, &w, 0);
        assert!(t2.value(l_ablate).item().is_finite());
    }

    #[test]
    fn ours_loss_parts_recompose_to_the_total() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(7);
        let recon = ReconDecoder::new(&mut store, &mut rng, F);
        let clf = DomainClassifier::new(&mut store, &mut rng, F, 3);
        let w = toy_window();
        let cfg = AdapTrajConfig::smoke();
        let mut tape = Tape::new();
        let feats = toy_features(&mut tape, &mut rng);
        let parts = ours_loss_parts(&store, &mut tape, &cfg, &recon, &clf, &feats, &w, 1);
        let total = tape.value(parts.total).item();
        let recomposed = cfg.alpha * tape.value(parts.recon).item()
            + cfg.beta
                * tape
                    .value(parts.diff.expect("full config keeps L_diff"))
                    .item()
            + cfg.gamma * tape.value(parts.similar).item();
        assert!(
            (total - recomposed).abs() < 1e-4 * (1.0 + total.abs()),
            "total {total} vs recomposed {recomposed}"
        );
    }

    #[test]
    fn recon_loss_trainable_to_near_zero() {
        use adaptraj_tensor::optim::Adam;
        use adaptraj_tensor::GradBuffer;
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(2);
        let recon = ReconDecoder::new(&mut store, &mut rng, F);
        let w = toy_window();
        let fixed_inv = Tensor::randn(1, F, 0.0, 1.0, &mut rng);
        let fixed_spec = Tensor::randn(1, F, 0.0, 1.0, &mut rng);
        let mut opt = Adam::new(0.01);
        let mut last = f32::MAX;
        for _ in 0..300 {
            let mut tape = Tape::new();
            let feats = Features {
                inv_ind: tape.constant(fixed_inv.clone()),
                spec_ind: tape.constant(fixed_spec.clone()),
                inv_nei: tape.constant(Tensor::zeros(1, F)),
                spec_nei: tape.constant(Tensor::zeros(1, F)),
            };
            let l = recon_loss(&store, &mut tape, &recon, &feats, &w);
            let grads = tape.backward(l);
            let mut buf = GradBuffer::new();
            buf.absorb(&tape, &grads);
            opt.step(&mut store, &buf);
            last = tape.value(l).item();
        }
        assert!(last < 0.01, "reconstruction stuck at {last}");
    }
}
