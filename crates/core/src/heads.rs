//! Auxiliary heads: the reconstruction decoder `D_recon` (Eq. 13) and the
//! domain classifier `D_class` (Eq. 16).

use crate::config::AUX_GROUP;
use adaptraj_data::trajectory::T_OBS;
use adaptraj_tensor::nn::{Activation, Mlp};
use adaptraj_tensor::{ParamStore, Rng, Tape, Var};

/// Reconstructs the focal agent's observed track from its invariant and
/// specific individual features. Training it forces `[H_i^i | H_i^s]`
/// jointly to retain the information content of the input (Eq. 12–13).
#[derive(Debug, Clone)]
pub struct ReconDecoder {
    mlp: Mlp,
}

impl ReconDecoder {
    pub fn new(store: &mut ParamStore, rng: &mut Rng, feat_dim: usize) -> Self {
        Self {
            mlp: Mlp::new(
                store,
                rng,
                "aux.recon",
                &[2 * feat_dim, 2 * feat_dim, T_OBS * 2],
                Activation::Relu,
                AUX_GROUP,
            ),
        }
    }

    /// `X̂_i = D_recon(H_i^i, H_i^s)` — a `[1, T_OBS·2]` flattened track.
    pub fn forward(&self, store: &ParamStore, tape: &mut Tape, inv_ind: Var, spec_ind: Var) -> Var {
        let joint = tape.concat_cols(&[inv_ind, spec_ind]);
        self.mlp.forward(store, tape, joint)
    }
}

/// Predicts the source-domain label from all four features (Eq. 16),
/// yielding the domain similarity loss `L_similar` (Eq. 15).
#[derive(Debug, Clone)]
pub struct DomainClassifier {
    mlp: Mlp,
    num_domains: usize,
}

impl DomainClassifier {
    pub fn new(store: &mut ParamStore, rng: &mut Rng, feat_dim: usize, num_domains: usize) -> Self {
        Self {
            mlp: Mlp::new(
                store,
                rng,
                "aux.class",
                &[4 * feat_dim, 2 * feat_dim, num_domains],
                Activation::Relu,
                AUX_GROUP,
            ),
            num_domains,
        }
    }

    pub fn num_domains(&self) -> usize {
        self.num_domains
    }

    /// Domain logits `[1, K]` from `(H_i^i, H_ℰ^i, H_i^s, H_ℰ^s)`.
    pub fn forward(
        &self,
        store: &ParamStore,
        tape: &mut Tape,
        inv_ind: Var,
        inv_nei: Var,
        spec_ind: Var,
        spec_nei: Var,
    ) -> Var {
        let joint = tape.concat_cols(&[inv_ind, inv_nei, spec_ind, spec_nei]);
        self.mlp.forward(store, tape, joint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptraj_tensor::Tensor;

    #[test]
    fn recon_output_shape() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(0);
        let dec = ReconDecoder::new(&mut store, &mut rng, 8);
        let mut tape = Tape::new();
        let a = tape.constant(Tensor::randn(1, 8, 0.0, 1.0, &mut rng));
        let b = tape.constant(Tensor::randn(1, 8, 0.0, 1.0, &mut rng));
        let out = dec.forward(&store, &mut tape, a, b);
        assert_eq!(tape.value(out).shape(), (1, T_OBS * 2));
    }

    #[test]
    fn classifier_logits_shape() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(1);
        let clf = DomainClassifier::new(&mut store, &mut rng, 8, 3);
        assert_eq!(clf.num_domains(), 3);
        let mut tape = Tape::new();
        let vs: Vec<_> = (0..4)
            .map(|_| tape.constant(Tensor::randn(1, 8, 0.0, 1.0, &mut rng)))
            .collect();
        let logits = clf.forward(&store, &mut tape, vs[0], vs[1], vs[2], vs[3]);
        assert_eq!(tape.value(logits).shape(), (1, 3));
    }

    #[test]
    fn classifier_is_learnable() {
        use adaptraj_tensor::optim::Adam;
        use adaptraj_tensor::GradBuffer;
        // Two linearly separable "feature" clusters must be classified
        // correctly after a few steps.
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(2);
        let clf = DomainClassifier::new(&mut store, &mut rng, 4, 2);
        let mut opt = Adam::new(0.05);
        for _ in 0..100 {
            let mut tape = Tape::new();
            let mut buf = GradBuffer::new();
            for (label, sign) in [(0usize, 1.0f32), (1, -1.0)] {
                let f = tape.constant(Tensor::full(1, 4, sign));
                let z = tape.constant(Tensor::zeros(1, 4));
                let logits = clf.forward(&store, &mut tape, f, z, f, z);
                let loss = tape.softmax_cross_entropy(logits, &[label]);
                let grads = tape.backward(loss);
                buf.absorb(&tape, &grads);
            }
            opt.step(&mut store, &buf);
        }
        let mut tape = Tape::new();
        let f = tape.constant(Tensor::full(1, 4, 1.0));
        let z = tape.constant(Tensor::zeros(1, 4));
        let logits = clf.forward(&store, &mut tape, f, z, f, z);
        let v = tape.value(logits);
        assert!(v.at(0, 0) > v.at(0, 1), "class 0 should win: {v:?}");
    }
}
