//! # adaptraj-core
//!
//! The AdapTraj framework (Qian et al., ICDE 2024): multi-source domain
//! generalization for multi-agent trajectory prediction, as a
//! plug-and-play wrapper over any [`adaptraj_models::Backbone`].
//!
//! AdapTraj's causal formulation models **four** feature types — the
//! domain-invariant and domain-specific features of both the focal agent
//! and its neighbors — via three modules:
//!
//! * [`extractors::InvariantExtractor`] — shared-weight V_ind/V_nei/V_fuse
//!   (Eqs. 9–11), regularized by a reconstruction loss (scale-invariant
//!   MSE, Eqs. 12–14) and a domain similarity loss (Eqs. 15–16).
//! * [`extractors::SpecificExtractor`] — per-source-domain experts
//!   {M_ind^k}/{M_nei^k}/M_fuse (Eqs. 17–19) kept disjoint from the
//!   invariant features by a soft orthogonality constraint (Eq. 20).
//! * [`extractors::Aggregator`] — A_ind/A_nei (Eqs. 21–22), trained
//!   teacher–student by randomly masking the domain label with ratio σ so
//!   the aggregated expert knowledge substitutes for the (unavailable)
//!   domain-specific expert at inference on unseen domains.
//!
//! Training follows Alg. 1's three steps, implemented in
//! [`model::AdapTraj::fit`] using per-group learning-rate multipliers
//! (`f_low`/`f_high`) and freezing.
//!
//! ```no_run
//! use adaptraj_core::{AdapTraj, AdapTrajConfig};
//! use adaptraj_data::domain::DomainId;
//! use adaptraj_models::{BackboneConfig, PecNet, Predictor};
//!
//! let sources = [DomainId::EthUcy, DomainId::LCas, DomainId::Syi];
//! let mut model = AdapTraj::new(AdapTrajConfig::default(), &sources, |s, r, extra| {
//!     PecNet::new(s, r, BackboneConfig::default().with_extra(extra))
//! });
//! // model.fit(&training_windows); model.predict(&window, &mut rng);
//! ```

pub mod config;
pub mod extractors;
pub mod heads;
pub mod losses;
pub mod model;

pub use config::{
    Ablation, AdapTrajConfig, AGGREGATOR_GROUP, AUX_GROUP, INVARIANT_GROUP, SPECIFIC_GROUP,
};
pub use extractors::{Aggregator, Features, InvariantExtractor, SpecificExtractor};
pub use heads::{DomainClassifier, ReconDecoder};
pub use model::{AdapTraj, FeatureDiagnostics};
