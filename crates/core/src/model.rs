//! The AdapTraj plug-and-play wrapper and the three-step training
//! procedure (Alg. 1).

use crate::config::{AdapTrajConfig, AGGREGATOR_GROUP, SPECIFIC_GROUP};
use crate::extractors::{Aggregator, Features, InvariantExtractor, SpecificExtractor};
use crate::heads::{DomainClassifier, ReconDecoder};
use crate::losses::ours_loss_parts;
use adaptraj_data::batch::{keyed_jobs, shuffled_batches, WindowBatch, MAX_WINDOWS_PER_JOB};
use adaptraj_data::domain::DomainId;
use adaptraj_data::trajectory::{Point, TrajWindow};
use adaptraj_exec::{window_seed, WorkerPool};
use adaptraj_models::backbone::{base_loss, batch_pred_points, tensor_to_points, EncodedScene};
use adaptraj_models::diagnostics::HealthAccum;
use adaptraj_models::predictor::{cap_per_domain, group_norms, Predictor, TrainReport};
use adaptraj_models::traits::{Backbone, ForwardCtx, GenMode};
use adaptraj_obs::{
    health, obs_info, obs_warn, profile, timeline, EpochRecord, LossComponents, PhaseTiming, Span,
};
use adaptraj_tensor::optim::Adam;
use adaptraj_tensor::{GradBuffer, ParamStore, Rng, Tape, Tensor, Var};
use std::time::Instant;

/// Raw (unweighted) loss-term values read off one job's tape — batch
/// means over the job's windows; `NaN` marks a term this pass did not
/// compute (e.g. `distill` on unmasked jobs). Used only for telemetry —
/// the gradient flows through the weighted total.
#[derive(Debug, Clone, Copy)]
struct BatchLossValues {
    backbone: f32,
    recon: f32,
    diff: f32,
    similar: f32,
    distill: f32,
}

/// Accumulates per-job loss-term means (weighted by job size) into
/// per-epoch means, skipping the NaN placeholders so a term's mean covers
/// only passes that computed it.
#[derive(Debug, Default)]
struct ComponentMeans {
    sums: [f64; 5],
    counts: [u64; 5],
}

impl ComponentMeans {
    fn add(&mut self, v: &BatchLossValues, n_windows: u64) {
        for (i, x) in [v.backbone, v.recon, v.diff, v.similar, v.distill]
            .into_iter()
            .enumerate()
        {
            if x.is_finite() {
                self.sums[i] += x as f64 * n_windows as f64;
                self.counts[i] += n_windows;
            }
        }
    }

    fn mean(&self, i: usize) -> f64 {
        if self.counts[i] == 0 {
            f64::NAN
        } else {
            self.sums[i] / self.counts[i] as f64
        }
    }

    fn components(&self) -> LossComponents {
        LossComponents {
            backbone: self.mean(0),
            recon: self.mean(1),
            diff: self.mean(2),
            similar: self.mean(3),
            distill: self.mean(4),
        }
    }
}

/// A backbone wrapped with the AdapTraj framework: domain-invariant
/// extractor, per-domain specific extractors, and the domain-specific
/// aggregator, trained with the three-step schedule.
pub struct AdapTraj<B: Backbone> {
    backbone: B,
    store: ParamStore,
    cfg: AdapTrajConfig,
    sources: Vec<DomainId>,
    invariant: InvariantExtractor,
    specific: SpecificExtractor,
    aggregator: Aggregator,
    recon: ReconDecoder,
    classifier: DomainClassifier,
}

impl<B: Backbone> AdapTraj<B> {
    /// Builds the framework around a backbone. `build` receives the
    /// parameter store, RNG, and the `extra_dim` the backbone must be
    /// constructed with (`2 × fused_dim`, for `[H^i | H^s]`).
    ///
    /// `sources` fixes the expert set: one domain-specific extractor pair
    /// per source domain.
    pub fn new(
        cfg: AdapTrajConfig,
        sources: &[DomainId],
        build: impl FnOnce(&mut ParamStore, &mut Rng, usize) -> B,
    ) -> Self {
        cfg.validate();
        assert!(!sources.is_empty(), "need at least one source domain");
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(cfg.trainer.seed);
        let backbone = build(&mut store, &mut rng, cfg.extra_dim());
        assert_eq!(
            backbone.config().extra_dim,
            cfg.extra_dim(),
            "backbone must be constructed with extra_dim = 2 * fused_dim"
        );
        let (h, p) = (backbone.config().hidden_dim, backbone.config().inter_dim);
        let invariant =
            InvariantExtractor::new(&mut store, &mut rng, h, p, cfg.feat_dim, cfg.fused_dim);
        let specific = SpecificExtractor::new(
            &mut store,
            &mut rng,
            sources,
            h,
            p,
            cfg.feat_dim,
            cfg.fused_dim,
        );
        let aggregator = Aggregator::new(&mut store, &mut rng, cfg.feat_dim);
        let recon = ReconDecoder::new(&mut store, &mut rng, cfg.feat_dim);
        let classifier = DomainClassifier::new(&mut store, &mut rng, cfg.feat_dim, sources.len());
        Self {
            backbone,
            store,
            cfg,
            sources: sources.to_vec(),
            invariant,
            specific,
            aggregator,
            recon,
            classifier,
        }
    }

    pub fn config(&self) -> &AdapTrajConfig {
        &self.cfg
    }

    pub fn sources(&self) -> &[DomainId] {
        &self.sources
    }

    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Mutable parameter access (checkpoint loading).
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    pub fn backbone(&self) -> &B {
        &self.backbone
    }

    /// Derives the four features for an encoded scene. `expert = Some(k)`
    /// routes the specific path through source-domain expert `k`
    /// (Eqs. 17–18); `expert = None` is the masked path through the
    /// aggregator over the summed expert outputs (Eqs. 21–22) — the only
    /// path available for unseen domains at inference.
    pub fn features(&self, tape: &mut Tape, enc: &EncodedScene, expert: Option<usize>) -> Features {
        let inv_ind = self.invariant.individual(&self.store, tape, enc.h_focal);
        let inv_nei = self.invariant.neighbor(&self.store, tape, enc.p_i);
        let (spec_ind, spec_nei) = match expert {
            Some(k) => (
                self.specific.individual(&self.store, tape, k, enc.h_focal),
                self.specific.neighbor(&self.store, tape, k, enc.p_i),
            ),
            None => {
                let sum_ind = self.specific.individual_sum(&self.store, tape, enc.h_focal);
                let sum_nei = self.specific.neighbor_sum(&self.store, tape, enc.p_i);
                (
                    self.aggregator.individual(&self.store, tape, sum_ind),
                    self.aggregator.neighbor(&self.store, tape, sum_nei),
                )
            }
        };
        Features {
            inv_ind,
            inv_nei,
            spec_ind,
            spec_nei,
        }
    }

    /// Assembles the `extra` conditioning `[H^i | H^s]` (fused invariant +
    /// fused specific), honoring the ablation switches by zeroing the
    /// removed family (the backbone width stays fixed). Shapes follow the
    /// batch: `[B, 2·fused_dim]` for `[B, feat_dim]` features.
    pub fn extra_features(&self, tape: &mut Tape, feats: &Features) -> Var {
        let b = tape.value(feats.inv_ind).rows();
        let h_inv = if self.cfg.ablation.use_invariant {
            self.invariant
                .fuse(&self.store, tape, feats.inv_ind, feats.inv_nei)
        } else {
            tape.constant(Tensor::zeros(b, self.cfg.fused_dim))
        };
        let h_spec = if self.cfg.ablation.use_specific {
            self.specific
                .fuse(&self.store, tape, feats.spec_ind, feats.spec_nei)
        } else {
            tape.constant(Tensor::zeros(b, self.cfg.fused_dim))
        };
        tape.concat_cols(&[h_inv, h_spec])
    }

    /// One training forward pass for a **domain-homogeneous** batch of
    /// windows: the batch-mean `L_total = L_base + δ·L_ours` (Eqs. 23/25)
    /// in a single tape pass. `masked` selects the teacher–student path:
    /// the specific features come from the aggregator, and an explicit
    /// distillation term pulls the student's (aggregator's) output toward
    /// the *teacher's* — the true domain's expert, detached (Sec. III-D,
    /// Fig. 2 labels `M` as the teacher of `A`). Without this term the
    /// aggregator only receives indirect task-loss signal and needs far
    /// more epochs to stop degrading the decoder's conditioning.
    fn batch_loss(
        &self,
        ctx: &mut ForwardCtx<'_>,
        batch: &WindowBatch<'_>,
        masked: bool,
        delta: f32,
    ) -> (Var, BatchLossValues) {
        ctx.mode = GenMode::Train;
        let domain = batch.windows()[0].domain;
        debug_assert!(
            batch.windows().iter().all(|w| w.domain == domain),
            "batch_loss requires a domain-homogeneous batch"
        );
        let domain_idx = self
            .specific
            .expert_of(domain)
            .expect("training window from a non-source domain");
        let enc = {
            let _p = profile::phase("encode");
            self.backbone.encode(ctx.store, ctx.tape, batch)
        };
        let expert = if masked { None } else { Some(domain_idx) };
        let (feats, distill, extra) = {
            let _p = profile::phase("features");
            let tape = &mut *ctx.tape;
            let feats = self.features(tape, &enc, expert);
            let distill = if masked && self.cfg.ablation.use_specific {
                // Teacher targets: the true domain's expert outputs, detached.
                let t_ind = self
                    .specific
                    .individual(&self.store, tape, domain_idx, enc.h_focal);
                let t_nei = self
                    .specific
                    .neighbor(&self.store, tape, domain_idx, enc.p_i);
                let t_ind_val = tape.value(t_ind).clone();
                let t_nei_val = tape.value(t_nei).clone();
                let d_ind = tape.mse_to(feats.spec_ind, &t_ind_val);
                let d_nei = tape.mse_to(feats.spec_nei, &t_nei_val);
                Some(tape.add(d_ind, d_nei))
            } else {
                None
            };
            let extra = self.extra_features(tape, &feats);
            (feats, distill, extra)
        };
        let (mut loss, backbone_val) = {
            let _p = profile::phase("generate");
            let gen = self.backbone.generate(ctx, batch, &enc, Some(extra));
            let tape = &mut *ctx.tape;
            let mut loss = base_loss(tape, gen.pred, batch);
            if let Some(aux) = gen.aux_loss {
                loss = tape.add(loss, aux);
            }
            let backbone_val = tape.value(loss).item();
            (loss, backbone_val)
        };
        let tape = &mut *ctx.tape;
        let parts = {
            let _p = profile::phase("aux_loss");
            ours_loss_parts(
                &self.store,
                tape,
                &self.cfg,
                &self.recon,
                &self.classifier,
                &feats,
                batch,
                domain_idx,
            )
        };
        let weighted = tape.scale(parts.total, delta);
        loss = tape.add(loss, weighted);
        if let Some(d) = distill {
            let weighted = tape.scale(d, self.cfg.distill_weight);
            loss = tape.add(loss, weighted);
        }
        let values = BatchLossValues {
            backbone: backbone_val,
            recon: tape.value(parts.recon).item(),
            diff: parts.diff.map_or(f32::NAN, |d| tape.value(d).item()),
            similar: tape.value(parts.similar).item(),
            distill: distill.map_or(f32::NAN, |d| tape.value(d).item()),
        };
        (loss, values)
    }

    /// The full batch-mean training loss `L_total = L_base + δ·L_ours`
    /// (+ distillation when `masked`) as a single tape node, exposed for
    /// the gradient-verification suite in `adaptraj-check`: `backward` on
    /// the returned node must match central finite differences over the
    /// store (modulo the intentional gradient-reversal and teacher-detach
    /// asymmetries documented there). The batch must be domain-homogeneous
    /// (as produced by [`keyed_jobs`]); `ctx.store` must be this model's
    /// own store — the extractor/head parameters are always read from
    /// `self`, and `ctx.rngs` must hold one rng per batched window.
    pub fn batch_training_loss(
        &self,
        ctx: &mut ForwardCtx<'_>,
        batch: &WindowBatch<'_>,
        masked: bool,
        delta: f32,
    ) -> Var {
        self.batch_loss(ctx, batch, masked, delta).0
    }

    /// Applies the per-step optimizer schedule of Alg. 1. Public so the
    /// verification suite can assert the freeze/multiplier state of each
    /// step directly rather than only observing its end-to-end effect.
    pub fn configure_schedule(opt: &mut Adam, cfg: &AdapTrajConfig, step: usize) {
        let sched = &mut opt.schedule;
        sched.unfreeze_all();
        sched.clear_multipliers();
        match step {
            // Step 1: backbone + extractors at full lr; aggregator untouched.
            1 => sched.freeze(AGGREGATOR_GROUP),
            // Step 2: aggregator at lr×f_high, others at lr×f_low, specific
            // extractor frozen (Lines 13–14 + the freezing requirement of
            // Sec. III-D).
            2 => {
                sched.freeze(SPECIFIC_GROUP);
                sched.set_group_multiplier(AGGREGATOR_GROUP, cfg.f_high);
                for g in [
                    adaptraj_models::BACKBONE_GROUP,
                    crate::config::INVARIANT_GROUP,
                    crate::config::AUX_GROUP,
                ] {
                    sched.set_group_multiplier(g, cfg.f_low);
                }
            }
            // Step 3: everything at lr×f_low (Line 25).
            3 => {
                for g in [
                    adaptraj_models::BACKBONE_GROUP,
                    crate::config::INVARIANT_GROUP,
                    SPECIFIC_GROUP,
                    AGGREGATOR_GROUP,
                    crate::config::AUX_GROUP,
                ] {
                    sched.set_group_multiplier(g, cfg.f_low);
                }
            }
            _ => unreachable!("steps are 1..=3"),
        }
    }
}

/// Diagnostic view of the four features for one window (inference path).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureDiagnostics {
    /// Cosine similarity between H_i^i and H_i^s — the quantity `L_diff`
    /// drives toward zero (disentanglement).
    pub individual_cosine: f32,
    /// Cosine similarity between H_ℰ^i and H_ℰ^s.
    pub neighbor_cosine: f32,
    /// L2 norms of the fused invariant and specific variables `[H^i, H^s]`.
    pub fused_inv_norm: f32,
    pub fused_spec_norm: f32,
}

fn cosine(a: &Tensor, b: &Tensor) -> f32 {
    let dot: f32 = a.data().iter().zip(b.data()).map(|(x, y)| x * y).sum();
    let na = a.frob_sq().sqrt();
    let nb = b.frob_sq().sqrt();
    if na < 1e-9 || nb < 1e-9 {
        0.0
    } else {
        dot / (na * nb)
    }
}

impl<B: Backbone> AdapTraj<B> {
    /// Computes feature diagnostics for a window along the masked
    /// (inference) path. Useful for verifying the disentanglement
    /// invariant on trained models.
    pub fn diagnostics(&self, w: &TrajWindow) -> FeatureDiagnostics {
        let mut tape = Tape::new();
        let batch = WindowBatch::single(w, 0);
        let enc = self.backbone.encode(&self.store, &mut tape, &batch);
        let feats = self.features(&mut tape, &enc, None);
        let h_inv = self
            .invariant
            .fuse(&self.store, &mut tape, feats.inv_ind, feats.inv_nei);
        let h_spec = self
            .specific
            .fuse(&self.store, &mut tape, feats.spec_ind, feats.spec_nei);
        FeatureDiagnostics {
            individual_cosine: cosine(tape.value(feats.inv_ind), tape.value(feats.spec_ind)),
            neighbor_cosine: cosine(tape.value(feats.inv_nei), tape.value(feats.spec_nei)),
            fused_inv_norm: tape.value(h_inv).frob_sq().sqrt(),
            fused_spec_norm: tape.value(h_spec).frob_sq().sqrt(),
        }
    }
}

impl<B: Backbone> Predictor for AdapTraj<B> {
    fn name(&self) -> String {
        format!("{}-AdapTraj", self.backbone.name())
    }

    /// Alg. 1: step 1 trains backbone + extractors with δ; step 2 trains
    /// the aggregator (high lr) with domain-label masking at ratio σ;
    /// step 3 fine-tunes everything at low lr, still with masking.
    fn fit(&mut self, train: &[TrajWindow]) -> TrainReport {
        for w in train {
            assert!(
                self.specific.expert_of(w.domain).is_some(),
                "window from {:?} but sources are {:?}",
                w.domain,
                self.sources
            );
        }
        let windows = cap_per_domain(train, &self.cfg.trainer);
        let mut rng = Rng::seed_from(self.cfg.trainer.seed ^ 0xADA9);
        let mut opt = Adam::new(self.cfg.trainer.lr);
        let mut report = TrainReport::default();
        if windows.is_empty() {
            return report;
        }
        obs_info!(
            "core.fit",
            "AdapTraj training: {} windows, {} epochs (steps at e_start={}, e_end={})",
            windows.len(),
            self.cfg.e_total(),
            self.cfg.e_start,
            self.cfg.e_end
        );

        // Wall-clock per schedule step, keyed `step - 1`.
        let mut step_seconds = [0.0f64; 3];
        let pool = WorkerPool::new(self.cfg.trainer.workers);
        let seed = self.cfg.trainer.seed;
        let windows_trained = adaptraj_obs::global().counter("exec.windows_trained");
        for epoch in 0..self.cfg.e_total() {
            let step = self.cfg.step_of_epoch(epoch);
            Self::configure_schedule(&mut opt, &self.cfg, step);
            let delta = if step == 1 {
                self.cfg.delta
            } else {
                self.cfg.delta_prime
            };
            let masking = step >= 2;
            let phase = ["step1", "step2", "step3"][step - 1];

            let mut span = Span::enter("core.fit", "epoch")
                .with("epoch", epoch)
                .with("step", step);
            let _tl_epoch = timeline::span_with_arg("epoch", "train", ("epoch", epoch as u64));
            // Profiler attribution for the three-step schedule: every op in
            // this epoch lands under "step1" | "step2" | "step3" (with the
            // window_loss sub-phases nested below, e.g. "step2/aux_loss").
            let _profile_phase = profile::phase(phase);
            let epoch_start = Instant::now();
            let mut rec = EpochRecord::new(epoch, phase);
            let mut means = ComponentMeans::default();
            let mut epoch_loss = 0.0f64;
            let mut seen = 0usize;
            let mut grad_norm_sum = 0.0f64;
            let mut batches = 0usize;
            // Profiler path the worker threads re-enter, so their records
            // roll up under the same "stepN" phase as the dispatcher's.
            let profile_path = profile::current_path().unwrap_or_default();
            // Per-source-domain gradient accumulation for the health
            // observatory (inert unless health capture is enabled).
            let mut diag =
                HealthAccum::new(epoch as u64, phase, self.sources.iter().map(|d| d.name()));
            let mut halted = false;
            let batch_list = shuffled_batches(windows.len(), self.cfg.trainer.batch_size, &mut rng);
            let n_batches = batch_list.len();
            for (batch_idx, batch) in batch_list.into_iter().enumerate() {
                let mut buf = GradBuffer::new();
                let inv_total = 1.0 / batch.len() as f32;
                // Masked flags come off the main-thread rng in batch order,
                // *before* dispatch, so the draw sequence is independent of
                // worker interleaving (and of worker count).
                let flags: Vec<(usize, bool)> = batch
                    .iter()
                    .map(|&i| (i, masking && rng.chance(self.cfg.sigma)))
                    .collect();
                // Jobs are homogeneous in (domain, masked): `batch_loss`
                // needs one expert per batch and one teacher/student path;
                // `keyed_jobs` depends only on these keys, so the split is
                // worker-count independent.
                let keys: Vec<(DomainId, bool)> =
                    flags.iter().map(|&(i, m)| (windows[i].domain, m)).collect();
                let jobs: Vec<(WindowBatch<'_>, bool)> = keyed_jobs(&keys, MAX_WINDOWS_PER_JOB)
                    .into_iter()
                    .map(|pos| {
                        let ws = pos.iter().map(|&p| windows[flags[p].0]).collect();
                        let ids = pos.iter().map(|&p| flags[p].0 as u64).collect();
                        (WindowBatch::new(ws, ids), flags[pos[0]].1)
                    })
                    .collect();
                let this = &*self;
                let results = pool
                    .map(&jobs, |_, (wb, masked)| {
                        let _p = profile::phase_at(&profile_path);
                        let _h = health::batch_scope(epoch as u64, wb.ids());
                        adaptraj_tensor::with_pooled(|tape| {
                            let mut rngs: Vec<Rng> = wb
                                .ids()
                                .iter()
                                .map(|&id| Rng::seed_from(window_seed(seed, epoch as u64, id)))
                                .collect();
                            let mut ctx = ForwardCtx::train(&this.store, tape, &mut rngs);
                            let (loss, values) = this.batch_loss(&mut ctx, wb, *masked, delta);
                            let val = tape.value(loss).item();
                            if !val.is_finite() {
                                return (val, values, Vec::new());
                            }
                            // `skip-window` policy: a tripped job drops
                            // its gradient contribution via the existing
                            // non-finite skip path.
                            if health::should_skip_window() {
                                return (f32::NAN, values, Vec::new());
                            }
                            let grads = tape.backward(loss);
                            let pairs = tape.take_param_grads(grads);
                            (val, values, pairs)
                        })
                    })
                    .unwrap_or_else(|e| panic!("training worker panicked: {e}"));
                // The flight recorder puts the whole reduction — absorb,
                // clip, optimizer step, recycle — on one dispatcher-lane
                // span, matching `models::trainer`'s `grad_reduce`.
                let tl_reduce = timeline::span("grad_reduce", "train");
                // Reduce in job order (weighted by job size): bit-identical
                // for any worker count.
                for ((wb, _), (val, values, pairs)) in jobs.iter().zip(results.iter()) {
                    if !val.is_finite() {
                        rec.non_finite_batches += wb.len() as u64;
                        obs_warn!(
                            "core.fit",
                            "non-finite loss at epoch {epoch}, windows {:?}; skipping job",
                            wb.ids()
                        );
                        continue;
                    }
                    let weight = wb.len() as f32 * inv_total;
                    buf.absorb_pairs_scaled(pairs, weight);
                    diag.absorb(wb.windows()[0].domain.name(), pairs, weight);
                    epoch_loss += *val as f64 * wb.len() as f64;
                    means.add(values, wb.len() as u64);
                    seen += wb.len();
                }
                windows_trained.add(batch.len() as u64);
                // Retire the shipped gradient buffers into this thread's
                // pool so the next batch's reduction reuses them.
                for (_, _, pairs) in results {
                    for (_, g) in pairs {
                        g.recycle();
                    }
                }
                let norm = if self.cfg.trainer.grad_clip > 0.0 {
                    buf.clip_global_norm(self.cfg.trainer.grad_clip)
                } else {
                    buf.global_norm()
                };
                grad_norm_sum += norm as f64;
                batches += 1;
                rec.group_norms = group_norms(&self.store, &buf);
                let before = diag.pre_step(&self.store, batch_idx + 1 == n_batches);
                opt.step(&mut self.store, &buf);
                diag.post_step(&self.store, before);
                buf.recycle();
                drop(tl_reduce);
                if health::halt_requested() {
                    obs_warn!(
                        "core.fit",
                        "health tripwire requested halt at epoch {epoch}; stopping training"
                    );
                    halted = true;
                    break;
                }
            }
            diag.finish();
            let mean_loss = (epoch_loss / seen.max(1) as f64) as f32;
            rec.loss = mean_loss as f64;
            rec.components = means.components();
            rec.grad_norm = grad_norm_sum / batches.max(1) as f64;
            rec.duration_s = epoch_start.elapsed().as_secs_f64();
            step_seconds[step - 1] += rec.duration_s;
            span.record("loss", rec.loss);
            span.record("grad_norm", rec.grad_norm);
            report.epoch_losses.push(mean_loss);
            report.epochs.push(rec);
            if halted {
                break;
            }
        }
        for (i, &secs) in step_seconds.iter().enumerate() {
            if secs > 0.0 {
                report.phases.push(PhaseTiming::new(
                    ["train.step1", "train.step2", "train.step3"][i],
                    secs,
                ));
            }
        }
        report
    }

    /// Inference (Sec. III-E.2): the target domain is unknown, so the
    /// specific features always come from the aggregator over all experts.
    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn predict(&self, w: &TrajWindow, rng: &mut Rng) -> Vec<Point> {
        adaptraj_tensor::with_pooled(|tape| {
            let batch = WindowBatch::single(w, 0);
            let enc = {
                let _p = profile::phase("encode");
                self.backbone.encode(&self.store, tape, &batch)
            };
            let extra = {
                let _p = profile::phase("features");
                let feats = self.features(tape, &enc, None);
                self.extra_features(tape, &feats)
            };
            let _p = profile::phase("generate");
            let mut ctx = ForwardCtx::sample(&self.store, tape, std::slice::from_mut(rng));
            let gen = self.backbone.generate(&mut ctx, &batch, &enc, Some(extra));
            tensor_to_points(ctx.tape.value(gen.pred))
        })
    }

    fn predict_batch(&self, batch: &WindowBatch<'_>, rngs: &mut [Rng]) -> Vec<Vec<Point>> {
        assert_eq!(batch.len(), rngs.len(), "one rng per batched window");
        // The aggregator path (target domain unknown) is per-window rows
        // end to end, so a coalesced batch needs no domain homogeneity.
        adaptraj_tensor::with_pooled(|tape| {
            let enc = {
                let _p = profile::phase("encode");
                self.backbone.encode(&self.store, tape, batch)
            };
            let extra = {
                let _p = profile::phase("features");
                let feats = self.features(tape, &enc, None);
                self.extra_features(tape, &feats)
            };
            let _p = profile::phase("generate");
            let mut ctx = ForwardCtx::sample(&self.store, tape, rngs);
            let gen = self.backbone.generate(&mut ctx, batch, &enc, Some(extra));
            batch_pred_points(ctx.tape.value(gen.pred), batch.len())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptraj_data::trajectory::{T_OBS, T_PRED, T_TOTAL};
    use adaptraj_models::config::{BackboneConfig, TrainerConfig};
    use adaptraj_models::pecnet::PecNet;

    const SOURCES: [DomainId; 2] = [DomainId::EthUcy, DomainId::LCas];

    fn window(domain: DomainId, v: f32, vy: f32) -> TrajWindow {
        let focal: Vec<Point> = (0..T_TOTAL)
            .map(|t| [v * t as f32, vy * t as f32])
            .collect();
        let nb: Vec<Vec<Point>> = vec![(0..T_OBS).map(|t| [v * t as f32, 1.0]).collect()];
        TrajWindow::from_world(&focal, &nb, domain)
    }

    fn make_model(cfg: AdapTrajConfig) -> AdapTraj<PecNet> {
        AdapTraj::new(cfg, &SOURCES, |s, r, extra| {
            PecNet::new(s, r, BackboneConfig::default().with_extra(extra))
        })
    }

    fn train_set() -> Vec<TrajWindow> {
        let mut out = Vec::new();
        for i in 0..10 {
            out.push(window(DomainId::EthUcy, 0.3 + i as f32 * 0.01, 0.0));
            out.push(window(DomainId::LCas, 0.1, 0.05 + i as f32 * 0.005));
        }
        out
    }

    #[test]
    fn construction_and_naming() {
        let model = make_model(AdapTrajConfig::smoke());
        assert_eq!(model.name(), "PECNet-AdapTraj");
        assert_eq!(model.sources(), &SOURCES);
    }

    #[test]
    #[should_panic(expected = "but sources are")]
    fn training_on_unknown_domain_panics() {
        let mut model = make_model(AdapTrajConfig::smoke());
        let bad = vec![window(DomainId::Sdd, 0.3, 0.0)];
        model.fit(&bad);
    }

    #[test]
    fn fit_runs_all_three_steps_and_descends() {
        let cfg = AdapTrajConfig {
            e_start: 2,
            e_end: 4,
            trainer: TrainerConfig {
                epochs: 6,
                batch_size: 8,
                ..TrainerConfig::smoke()
            },
            ..AdapTrajConfig::smoke()
        };
        let mut model = make_model(cfg);
        let report = model.fit(&train_set());
        assert_eq!(report.epoch_losses.len(), 6);
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
        assert!(
            report.final_loss().unwrap() < report.epoch_losses[0],
            "{:?}",
            report.epoch_losses
        );
    }

    #[test]
    fn fit_telemetry_labels_steps_and_decomposes_losses() {
        let cfg = AdapTrajConfig {
            e_start: 2,
            e_end: 4,
            trainer: TrainerConfig {
                epochs: 6,
                batch_size: 8,
                ..TrainerConfig::smoke()
            },
            ..AdapTrajConfig::smoke()
        };
        let mut model = make_model(cfg);
        let report = model.fit(&train_set());
        assert_eq!(report.epochs.len(), 6);
        let phases: Vec<&str> = report.epochs.iter().map(|e| e.phase.as_str()).collect();
        assert_eq!(
            phases,
            ["step1", "step1", "step2", "step2", "step3", "step3"]
        );
        for e in &report.epochs {
            assert!(e.loss.is_finite());
            assert!(e.grad_norm.is_finite());
            assert_eq!(e.non_finite_batches, 0);
            // Every epoch computes the decomposed ours-loss terms.
            for v in [
                e.components.backbone,
                e.components.recon,
                e.components.diff,
                e.components.similar,
            ] {
                assert!(
                    v.is_finite(),
                    "epoch {} components: {:?}",
                    e.epoch,
                    e.components
                );
            }
            // Per-group norms cover the five framework groups.
            let labels: Vec<&str> = e.group_norms.iter().map(|g| g.label.as_str()).collect();
            assert_eq!(
                labels,
                ["backbone", "invariant", "specific", "aggregator", "aux"]
            );
            assert!(e.group_norms.iter().all(|g| g.param_norm > 0.0));
        }
        // Distillation only runs on masked (step >= 2) passes.
        assert!(report.epochs[0].components.distill.is_nan());
        assert!(report.epochs[5].components.distill.is_finite());
        // Per-step wall-clock covers all three schedule steps.
        let timed: Vec<&str> = report.phases.iter().map(|p| p.phase.as_str()).collect();
        assert_eq!(timed, ["train.step1", "train.step2", "train.step3"]);
        assert!(report.phases.iter().all(|p| p.duration_s > 0.0));
    }

    #[test]
    fn specific_extractor_frozen_during_step_two() {
        // Train a model up to the end of step 1, snapshot the specific
        // extractor params, run step 2 epochs, verify bit-identity.
        let cfg = AdapTrajConfig {
            e_start: 1,
            e_end: 3,
            trainer: TrainerConfig {
                epochs: 3,
                batch_size: 8,
                ..TrainerConfig::smoke()
            },
            ..AdapTrajConfig::smoke()
        };
        // Manual staged training to snapshot between steps.
        let mut model = make_model(cfg.clone());
        let data = train_set();

        // Step 1 only.
        let mut step1_cfg = cfg.clone();
        step1_cfg.e_start = 1;
        step1_cfg.e_end = 1;
        step1_cfg.trainer.epochs = 1;
        model.cfg = step1_cfg;
        model.fit(&data);
        let spec_ids = model.store.ids_in_group(SPECIFIC_GROUP);
        let before: Vec<_> = spec_ids
            .iter()
            .map(|&id| model.store.value(id).clone())
            .collect();

        // Step 2 only (e_start=0 so every epoch is step 2).
        let mut step2_cfg = cfg.clone();
        step2_cfg.e_start = 0;
        step2_cfg.e_end = 2;
        step2_cfg.trainer.epochs = 2;
        model.cfg = step2_cfg;
        model.fit(&data);
        for (id, b) in spec_ids.iter().zip(&before) {
            assert_eq!(
                model.store.value(*id),
                b,
                "specific extractor moved during step 2"
            );
        }
    }

    #[test]
    fn predict_on_unseen_domain_uses_aggregator() {
        let mut model = make_model(AdapTrajConfig::smoke());
        model.fit(&train_set());
        // SDD was never a source; prediction must still work (masked path).
        let unseen = window(DomainId::Sdd, 0.5, 0.2);
        let mut rng = Rng::seed_from(3);
        let pred = model.predict(&unseen, &mut rng);
        assert_eq!(pred.len(), T_PRED);
        assert!(pred.iter().all(|p| p[0].is_finite() && p[1].is_finite()));
    }

    #[test]
    fn masked_features_do_not_depend_on_domain_label() {
        // The aggregated path must produce identical features for two
        // windows that differ only in their (claimed) domain tag.
        let model = make_model(AdapTrajConfig::smoke());
        let mut w1 = window(DomainId::EthUcy, 0.3, 0.1);
        w1.domain = DomainId::EthUcy;
        let mut w2 = w1.clone();
        w2.domain = DomainId::LCas;
        let mut t1 = Tape::new();
        let b1 = WindowBatch::single(&w1, 0);
        let e1 = model.backbone.encode(&model.store, &mut t1, &b1);
        let f1 = model.features(&mut t1, &e1, None);
        let mut t2 = Tape::new();
        let b2 = WindowBatch::single(&w2, 0);
        let e2 = model.backbone.encode(&model.store, &mut t2, &b2);
        let f2 = model.features(&mut t2, &e2, None);
        assert_eq!(
            t1.value(f1.spec_ind).data(),
            t2.value(f2.spec_ind).data(),
            "masked path consulted the domain label"
        );
    }

    #[test]
    fn diagnostics_report_finite_bounded_cosines() {
        let mut model = make_model(AdapTrajConfig::smoke());
        model.fit(&train_set());
        let d = model.diagnostics(&window(DomainId::Sdd, 0.4, 0.1));
        assert!((-1.0..=1.0).contains(&d.individual_cosine), "{d:?}");
        assert!((-1.0..=1.0).contains(&d.neighbor_cosine), "{d:?}");
        assert!(d.fused_inv_norm.is_finite() && d.fused_spec_norm.is_finite());
    }

    #[test]
    fn orthogonality_weight_controls_feature_alignment() {
        // A/B on β only: training with a strong orthogonality constraint
        // must leave the invariant/specific features less aligned than
        // training with the constraint disabled. (The isolated descent
        // property of L_diff is covered in `losses`; this checks the
        // constraint still bites inside the full multi-loss objective.)
        let data = train_set();
        let trained_mean_cos = |beta: f32| -> f32 {
            let mut cfg = AdapTrajConfig::smoke();
            cfg.beta = beta;
            cfg.delta = 2.0;
            cfg.delta_prime = 1.0;
            let mut model = make_model(cfg);
            model.fit(&data);
            data.iter()
                .map(|w| model.diagnostics(w).individual_cosine.abs())
                .sum::<f32>()
                / data.len() as f32
        };
        let with_constraint = trained_mean_cos(4.0);
        let without = trained_mean_cos(0.0);
        assert!(
            with_constraint < without,
            "beta should reduce alignment: beta=4 -> {with_constraint}, beta=0 -> {without}"
        );
    }

    #[test]
    fn ablations_zero_the_right_half_of_extra() {
        let fused = AdapTrajConfig::smoke().fused_dim;
        for (use_inv, use_spec) in [(false, true), (true, false)] {
            let mut cfg = AdapTrajConfig::smoke();
            cfg.ablation.use_invariant = use_inv;
            cfg.ablation.use_specific = use_spec;
            let model = make_model(cfg);
            let w = window(DomainId::EthUcy, 0.3, 0.0);
            let mut tape = Tape::new();
            let batch = WindowBatch::single(&w, 0);
            let enc = model.backbone.encode(&model.store, &mut tape, &batch);
            let feats = model.features(&mut tape, &enc, Some(0));
            let extra = model.extra_features(&mut tape, &feats);
            let v = tape.value(extra);
            let first_half: f32 = v.data()[..fused].iter().map(|x| x.abs()).sum();
            let second_half: f32 = v.data()[fused..].iter().map(|x| x.abs()).sum();
            if use_inv {
                assert!(second_half == 0.0 && first_half >= 0.0);
            } else {
                assert!(first_half == 0.0);
            }
        }
    }
}
