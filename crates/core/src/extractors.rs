//! The three AdapTraj feature modules (Fig. 2):
//! domain-invariant extractor (Sec. III-B), domain-specific extractor
//! (Sec. III-C), and domain-specific aggregator (Sec. III-D).

use crate::config::{AGGREGATOR_GROUP, INVARIANT_GROUP, SPECIFIC_GROUP};
use adaptraj_data::domain::DomainId;
use adaptraj_tensor::nn::{Activation, Mlp};
use adaptraj_tensor::{ParamStore, Rng, Tape, Var};

/// The four disentangled features for one window, on a tape.
#[derive(Debug, Clone, Copy)]
pub struct Features {
    /// H_i^i — invariant individual feature (Eq. 9).
    pub inv_ind: Var,
    /// H_ℰ^i — invariant neighbor feature (Eq. 10).
    pub inv_nei: Var,
    /// H_i^s — specific individual feature (Eq. 17 / Eq. 21).
    pub spec_ind: Var,
    /// H_ℰ^s — specific neighbor feature (Eq. 18 / Eq. 22).
    pub spec_nei: Var,
}

/// Shared-weight domain-invariant extractor: V_ind, V_nei, V_fuse
/// (Eqs. 9–11). Weight sharing across source domains is structural —
/// there is exactly one copy of each module.
#[derive(Debug, Clone)]
pub struct InvariantExtractor {
    v_ind: Mlp,
    v_nei: Mlp,
    v_fuse: Mlp,
}

impl InvariantExtractor {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        hidden_dim: usize,
        inter_dim: usize,
        feat_dim: usize,
        fused_dim: usize,
    ) -> Self {
        Self {
            // tanh keeps the features bounded even when an unseen domain
            // drives the backbone encodings outside the source range —
            // unbounded ReLU features were observed to extrapolate badly
            // on the fastest target domain (SYI).
            v_ind: Mlp::new(
                store,
                rng,
                "inv.ind",
                &[hidden_dim, feat_dim],
                Activation::Tanh,
                INVARIANT_GROUP,
            )
            .with_output_activation(),
            v_nei: Mlp::new(
                store,
                rng,
                "inv.nei",
                &[inter_dim, feat_dim],
                Activation::Tanh,
                INVARIANT_GROUP,
            )
            .with_output_activation(),
            v_fuse: Mlp::new(
                store,
                rng,
                "inv.fuse",
                &[2 * feat_dim, fused_dim],
                Activation::Tanh,
                INVARIANT_GROUP,
            )
            .with_output_activation(),
        }
    }

    /// Eq. 9: H_i^i from the focal agent's mobility state.
    pub fn individual(&self, store: &ParamStore, tape: &mut Tape, h_focal: Var) -> Var {
        self.v_ind.forward(store, tape, h_focal)
    }

    /// Eq. 10: H_ℰ^i from the interaction tensor.
    pub fn neighbor(&self, store: &ParamStore, tape: &mut Tape, p_i: Var) -> Var {
        self.v_nei.forward(store, tape, p_i)
    }

    /// Eq. 11: fused invariant variable H^i.
    pub fn fuse(&self, store: &ParamStore, tape: &mut Tape, inv_ind: Var, inv_nei: Var) -> Var {
        let joint = tape.concat_cols(&[inv_ind, inv_nei]);
        self.v_fuse.forward(store, tape, joint)
    }
}

/// Per-domain mixture-of-experts specific extractor: {M_ind^k},
/// {M_nei^k}, M_fuse (Eqs. 17–19). Expert `k` is trained only on windows
/// from source domain `k`.
#[derive(Debug, Clone)]
pub struct SpecificExtractor {
    domains: Vec<DomainId>,
    m_ind: Vec<Mlp>,
    m_nei: Vec<Mlp>,
    m_fuse: Mlp,
}

impl SpecificExtractor {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        domains: &[DomainId],
        hidden_dim: usize,
        inter_dim: usize,
        feat_dim: usize,
        fused_dim: usize,
    ) -> Self {
        assert!(!domains.is_empty(), "need at least one source domain");
        let m_ind = domains
            .iter()
            .map(|d| {
                Mlp::new(
                    store,
                    rng,
                    &format!("spec.ind.{}", d.name()),
                    &[hidden_dim, feat_dim],
                    Activation::Tanh,
                    SPECIFIC_GROUP,
                )
                .with_output_activation()
            })
            .collect();
        let m_nei = domains
            .iter()
            .map(|d| {
                Mlp::new(
                    store,
                    rng,
                    &format!("spec.nei.{}", d.name()),
                    &[inter_dim, feat_dim],
                    Activation::Tanh,
                    SPECIFIC_GROUP,
                )
                .with_output_activation()
            })
            .collect();
        let m_fuse = Mlp::new(
            store,
            rng,
            "spec.fuse",
            &[2 * feat_dim, fused_dim],
            Activation::Tanh,
            SPECIFIC_GROUP,
        )
        .with_output_activation();
        Self {
            domains: domains.to_vec(),
            m_ind,
            m_nei,
            m_fuse,
        }
    }

    pub fn num_experts(&self) -> usize {
        self.domains.len()
    }

    /// Index of a source domain's expert, if it is one of the sources.
    pub fn expert_of(&self, domain: DomainId) -> Option<usize> {
        self.domains.iter().position(|&d| d == domain)
    }

    /// Eq. 17: H_i^s from expert `k`.
    pub fn individual(&self, store: &ParamStore, tape: &mut Tape, k: usize, h_focal: Var) -> Var {
        self.m_ind[k].forward(store, tape, h_focal)
    }

    /// Eq. 18: H_ℰ^s from expert `k`.
    pub fn neighbor(&self, store: &ParamStore, tape: &mut Tape, k: usize, p_i: Var) -> Var {
        self.m_nei[k].forward(store, tape, p_i)
    }

    /// Σ_k M_ind^k(·) — the aggregator's teacher signal (inside Eq. 21).
    pub fn individual_sum(&self, store: &ParamStore, tape: &mut Tape, h_focal: Var) -> Var {
        let mut acc = self.individual(store, tape, 0, h_focal);
        for k in 1..self.num_experts() {
            let e = self.individual(store, tape, k, h_focal);
            acc = tape.add(acc, e);
        }
        acc
    }

    /// Σ_k M_nei^k(·) (inside Eq. 22).
    pub fn neighbor_sum(&self, store: &ParamStore, tape: &mut Tape, p_i: Var) -> Var {
        let mut acc = self.neighbor(store, tape, 0, p_i);
        for k in 1..self.num_experts() {
            let e = self.neighbor(store, tape, k, p_i);
            acc = tape.add(acc, e);
        }
        acc
    }

    /// Eq. 19: fused specific variable H^s.
    pub fn fuse(&self, store: &ParamStore, tape: &mut Tape, spec_ind: Var, spec_nei: Var) -> Var {
        let joint = tape.concat_cols(&[spec_ind, spec_nei]);
        self.m_fuse.forward(store, tape, joint)
    }
}

/// Domain-specific aggregator: A_ind, A_nei (Eqs. 21–22). Trained (steps
/// 2–3 of Alg. 1) to turn the summed expert knowledge into effective
/// specific features when the domain label is masked — which is always the
/// case at inference on an unseen domain.
#[derive(Debug, Clone)]
pub struct Aggregator {
    a_ind: Mlp,
    a_nei: Mlp,
}

impl Aggregator {
    pub fn new(store: &mut ParamStore, rng: &mut Rng, feat_dim: usize) -> Self {
        Self {
            a_ind: Mlp::new(
                store,
                rng,
                "agg.ind",
                &[feat_dim, feat_dim, feat_dim],
                Activation::Tanh,
                AGGREGATOR_GROUP,
            )
            .with_output_activation(),
            a_nei: Mlp::new(
                store,
                rng,
                "agg.nei",
                &[feat_dim, feat_dim, feat_dim],
                Activation::Tanh,
                AGGREGATOR_GROUP,
            )
            .with_output_activation(),
        }
    }

    /// Eq. 21.
    pub fn individual(&self, store: &ParamStore, tape: &mut Tape, expert_sum: Var) -> Var {
        self.a_ind.forward(store, tape, expert_sum)
    }

    /// Eq. 22.
    pub fn neighbor(&self, store: &ParamStore, tape: &mut Tape, expert_sum: Var) -> Var {
        self.a_nei.forward(store, tape, expert_sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptraj_tensor::Tensor;

    const H: usize = 12;
    const P: usize = 10;
    const F: usize = 6;
    const FF: usize = 5;

    fn setup() -> (
        ParamStore,
        InvariantExtractor,
        SpecificExtractor,
        Aggregator,
    ) {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(0);
        let inv = InvariantExtractor::new(&mut store, &mut rng, H, P, F, FF);
        let spec = SpecificExtractor::new(
            &mut store,
            &mut rng,
            &[DomainId::EthUcy, DomainId::LCas, DomainId::Syi],
            H,
            P,
            F,
            FF,
        );
        let agg = Aggregator::new(&mut store, &mut rng, F);
        (store, inv, spec, agg)
    }

    #[test]
    fn shapes_through_all_modules() {
        let (store, inv, spec, agg) = setup();
        let mut rng = Rng::seed_from(1);
        let mut tape = Tape::new();
        let h = tape.constant(Tensor::randn(1, H, 0.0, 1.0, &mut rng));
        let p = tape.constant(Tensor::randn(1, P, 0.0, 1.0, &mut rng));

        let ii = inv.individual(&store, &mut tape, h);
        let in_ = inv.neighbor(&store, &mut tape, p);
        let h_inv = inv.fuse(&store, &mut tape, ii, in_);
        assert_eq!(tape.value(ii).shape(), (1, F));
        assert_eq!(tape.value(h_inv).shape(), (1, FF));

        let si = spec.individual(&store, &mut tape, 1, h);
        let sn = spec.neighbor(&store, &mut tape, 1, p);
        let h_spec = spec.fuse(&store, &mut tape, si, sn);
        assert_eq!(tape.value(h_spec).shape(), (1, FF));

        let sum_i = spec.individual_sum(&store, &mut tape, h);
        let ai = agg.individual(&store, &mut tape, sum_i);
        assert_eq!(tape.value(ai).shape(), (1, F));
    }

    #[test]
    fn experts_are_distinct_functions() {
        let (store, _, spec, _) = setup();
        let mut rng = Rng::seed_from(2);
        let mut tape = Tape::new();
        let h = tape.constant(Tensor::randn(1, H, 0.0, 1.0, &mut rng));
        let e0 = spec.individual(&store, &mut tape, 0, h);
        let e1 = spec.individual(&store, &mut tape, 1, h);
        assert_ne!(tape.value(e0).data(), tape.value(e1).data());
    }

    #[test]
    fn expert_lookup_by_domain() {
        let (_, _, spec, _) = setup();
        assert_eq!(spec.num_experts(), 3);
        assert_eq!(spec.expert_of(DomainId::LCas), Some(1));
        assert_eq!(spec.expert_of(DomainId::Sdd), None);
    }

    #[test]
    fn expert_sum_equals_manual_sum() {
        let (store, _, spec, _) = setup();
        let mut rng = Rng::seed_from(3);
        let mut tape = Tape::new();
        let h = tape.constant(Tensor::randn(1, H, 0.0, 1.0, &mut rng));
        let sum = spec.individual_sum(&store, &mut tape, h);
        let e0 = spec.individual(&store, &mut tape, 0, h);
        let e1 = spec.individual(&store, &mut tape, 1, h);
        let e2 = spec.individual(&store, &mut tape, 2, h);
        let manual_a = tape.add(e0, e1);
        let manual = tape.add(manual_a, e2);
        let diff = tape.sub(sum, manual);
        assert!(tape.value(diff).max_abs() < 1e-5);
    }

    #[test]
    fn groups_are_assigned_correctly() {
        let (store, _, _, _) = setup();
        use crate::config::{AGGREGATOR_GROUP, INVARIANT_GROUP, SPECIFIC_GROUP};
        assert!(!store.ids_in_group(INVARIANT_GROUP).is_empty());
        assert!(!store.ids_in_group(SPECIFIC_GROUP).is_empty());
        assert!(!store.ids_in_group(AGGREGATOR_GROUP).is_empty());
    }
}
