//! Property tests for the predict-request wire codec: round-trip
//! identity over ragged scenes (down to a lone agent and an absent
//! future, up to the neighbor cap), and rejection of non-finite
//! coordinates with a structured error. Driven by the shared shrinking
//! harness in `adaptraj_check::prop`.

use adaptraj_check::prop::{check, Gen};
use adaptraj_data::domain::DomainId;
use adaptraj_data::trajectory::{Point, TrajWindow, T_OBS, T_PRED};
use adaptraj_obs::json::Value;
use adaptraj_serve::codec;

fn track(g: &mut Gen, len: usize) -> Vec<Point> {
    (0..len).map(|_| [g.value(), g.value()]).collect()
}

/// A protocol-valid scene of generator-driven raggedness. `size` scales
/// coordinate magnitude and neighbor count; boundary shapes (no
/// neighbors, zero future) appear via the draws below.
fn scene(g: &mut Gen) -> TrajWindow {
    let neighbors = match g.int_in(0, 3) {
        0 => 0,                       // lone agent
        1 => g.int_in(1, 4),          // typical
        _ => g.int_in(1, 2) * g.size, // crowded (scales up)
    };
    let fut = if g.int_in(0, 3) == 0 {
        vec![[0.0, 0.0]; T_PRED] // what an absent future decodes to
    } else {
        track(g, T_PRED)
    };
    TrajWindow {
        obs: track(g, T_OBS),
        fut,
        neighbors: (0..neighbors).map(|_| track(g, T_OBS)).collect(),
        domain: match g.int_in(0, 3) {
            0 => DomainId::EthUcy,
            1 => DomainId::LCas,
            2 => DomainId::Syi,
            _ => DomainId::Sdd,
        },
        origin: [g.value(), g.value()],
    }
}

fn bits(w: &TrajWindow) -> Vec<u32> {
    w.obs
        .iter()
        .chain(w.fut.iter())
        .chain(w.neighbors.iter().flatten())
        .chain(std::iter::once(&w.origin))
        .flat_map(|p| [p[0].to_bits(), p[1].to_bits()])
        .collect()
}

#[test]
fn scene_round_trip_is_bit_identical_over_ragged_shapes() {
    check("codec_scene_round_trip", 300, |g| {
        let w = scene(g);
        let json = codec::encode_scene(&w);
        let v = Value::parse(&json).map_err(|e| format!("encoded scene unparseable: {e}"))?;
        let back = codec::decode_scene(&v).map_err(|e| format!("decode failed: {e:?}"))?;
        if back.domain != w.domain {
            return Err(format!(
                "domain changed: {:?} -> {:?}",
                w.domain, back.domain
            ));
        }
        if back.neighbors.len() != w.neighbors.len() {
            return Err(format!(
                "neighbor count changed: {} -> {}",
                w.neighbors.len(),
                back.neighbors.len()
            ));
        }
        if bits(&back) != bits(&w) {
            return Err("coordinates not bit-identical after round trip".into());
        }
        Ok(())
    });
}

#[test]
fn full_request_round_trips_seed_and_k() {
    check("codec_request_round_trip", 150, |g| {
        let w = scene(g);
        let seed = g.rng().below(1_000_000) as u64;
        let k = g.int_in(1, codec::MAX_K);
        let body = codec::encode_request(&w, seed, k);
        let req = codec::decode_request(&body).map_err(|e| format!("decode: {e:?}"))?;
        if req.seed != seed || req.k != k {
            return Err(format!(
                "seed/k changed: ({seed},{k}) -> ({},{})",
                req.seed, req.k
            ));
        }
        if bits(&req.window) != bits(&w) {
            return Err("window not bit-identical through a full request".into());
        }
        Ok(())
    });
}

#[test]
fn non_finite_coordinates_are_rejected_with_a_structured_error() {
    // Splice a non-finite literal into one coordinate of an otherwise
    // valid encoded scene: `1e999` parses to +Inf at the JSON layer, and
    // `1e60` overflows f32 — both must be refused as `non_finite`.
    check("codec_rejects_non_finite", 150, |g| {
        let w = scene(g);
        let json = codec::encode_scene(&w);
        let poison = if g.int_in(0, 1) == 0 { "1e999" } else { "1e60" };
        // Positional splice: overwrite the first x-coordinate of the obs
        // track, wherever the encoder put it and however it formatted it.
        let start = json
            .find("\"obs\":[[")
            .ok_or("encoded scene has no obs array")?
            + "\"obs\":[[".len();
        let end = start
            + json[start..]
                .find(',')
                .ok_or("obs coordinate has no terminator")?;
        let poisoned = format!("{}{poison}{}", &json[..start], &json[end..]);
        let v = Value::parse(&poisoned)
            .map_err(|e| format!("poisoned scene should still be JSON: {e}"))?;
        match codec::decode_scene(&v) {
            Ok(_) => Err(format!("decode accepted a {poison} coordinate")),
            Err(e) if e.code == "non_finite" => Ok(()),
            Err(e) => Err(format!("wrong error code {:?} (want non_finite)", e.code)),
        }
    });
}

#[test]
fn neighbor_cap_is_enforced_exactly_at_the_boundary() {
    // MAX_NEIGHBORS agents decode; one more is a structured rejection.
    let at_cap = TrajWindow {
        obs: vec![[0.0, 0.0]; T_OBS],
        fut: vec![[0.0, 0.0]; T_PRED],
        neighbors: vec![vec![[1.0, 1.0]; T_OBS]; codec::MAX_NEIGHBORS],
        domain: DomainId::EthUcy,
        origin: [0.0, 0.0],
    };
    let v = Value::parse(&codec::encode_scene(&at_cap)).unwrap();
    assert_eq!(
        codec::decode_scene(&v).unwrap().neighbors.len(),
        codec::MAX_NEIGHBORS
    );

    let mut over = at_cap;
    over.neighbors.push(vec![[2.0, 2.0]; T_OBS]);
    let v = Value::parse(&codec::encode_scene(&over)).unwrap();
    let err = codec::decode_scene(&v).expect_err("over-cap scene must be rejected");
    assert_eq!(err.code, "invalid_scene");
}
