//! # adaptraj-serve
//!
//! Production inference service: a zero-dependency HTTP/JSON server that
//! micro-batches in-flight predict requests onto the batched execution
//! path (`Predictor::predict_batch` over [`WindowBatch`]es run on an
//! [`adaptraj_exec::WorkerPool`]).
//!
//! ## The serving contract
//!
//! A response for a given scene + checkpoint + seed is **bit-identical**
//! to the offline single-window eval path
//! (`Predictor::predict_k(&window, k, &mut Rng::seed_from(seed))`),
//! regardless of how many other requests were coalesced into the same
//! micro-batch. This holds because batched kernels are row-wise over
//! per-window rows with fixed accumulation order, pad slots contribute
//! exact zeros, and every window draws latents from its own rng stream
//! (`crates/check/tests/batch_equivalence.rs` pins the kernel-level
//! identity; `tests/serve.rs` pins it end-to-end through this server).
//!
//! Mixed `k` inside one batch is handled by running `max(k)` batched
//! sample passes and letting each request keep its first `k` modes —
//! per-window rng streams make the extra draws invisible to neighbors.
//!
//! ## Architecture
//!
//! ```text
//! accept threads ──decode──▶ bounded queue ──▶ batcher thread
//!      │ 400/413/408/503             │               │ coalesce ≤ batch window
//!      ▼                            ▼               ▼ chunk ≤ MAX_WINDOWS_PER_JOB
//!   error response            503 when full    WorkerPool::map(predict_batch)
//!                                                   │
//!                                                   ▼ batcher writes responses
//! ```
//!
//! * **Admission**: the queue is bounded (`queue_cap`); a full queue
//!   answers `503` with a structured JSON error immediately — shed load
//!   at the door, never inside the model.
//! * **Micro-batching**: the batcher waits up to `batch_window_us` from
//!   the first queued request (flushing early once a full job of
//!   [`MAX_WINDOWS_PER_JOB`] windows is waiting), then drains everything
//!   and chunks it into jobs in arrival order.
//! * **Deadlines**: a request older than `deadline_ms` at batch-formation
//!   time gets `504` instead of occupying model capacity.
//! * **Hot reload**: the model lives behind `RwLock<Arc<ModelInner>>`;
//!   each batch cycle clones the inner `Arc` once, so a concurrent
//!   `POST /reload` swap can never expose a torn model — every response
//!   is computed entirely by one (checkpoint, version) pair.

pub mod codec;

use adaptraj_data::batch::{WindowBatch, MAX_WINDOWS_PER_JOB};
use adaptraj_data::trajectory::Point;
use adaptraj_exec::WorkerPool;
use adaptraj_models::predictor::Predictor;
use adaptraj_obs::http::{read_request, write_error, write_json_error, write_response, HttpLimits};
use adaptraj_obs::json::{Obj, Value};
use adaptraj_obs::metrics;
use adaptraj_obs::serve::render_prometheus;
use adaptraj_tensor::rng::Rng;
use codec::PredictRequest;
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration; every knob has a CLI flag on `adaptraj serve`.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port
    /// ([`PredictServer::local_addr`] reports it).
    pub addr: String,
    /// Concurrent accept/parse threads.
    pub accept_threads: usize,
    /// Worker threads for batched model execution.
    pub workers: usize,
    /// Coalescing window: how long the batcher waits after the first
    /// queued request for more requests to share the batch.
    pub batch_window_us: u64,
    /// Bounded admission queue; a full queue answers `503`.
    pub queue_cap: usize,
    /// Per-request deadline from admission; exceeded → `504`.
    pub deadline_ms: u64,
    /// Request body size cap (`413` beyond it).
    pub max_body_bytes: usize,
    /// Per-connection read deadline (`408` for stalled peers).
    pub read_deadline_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            accept_threads: 2,
            workers: 2,
            batch_window_us: 2000,
            queue_cap: 256,
            deadline_ms: 2000,
            max_body_bytes: 1024 * 1024,
            read_deadline_ms: 2000,
        }
    }
}

/// Reload hook: maps a checkpoint path to a freshly built predictor with
/// those parameters loaded. Supplied by the CLI (which knows the
/// backbone/method spec); absent in tests that don't exercise reload.
pub type Loader = Box<dyn Fn(&str) -> Result<Box<dyn Predictor>, String> + Send + Sync>;

/// The immutable unit of hot swap: one predictor at one version. Batch
/// cycles and probes clone the `Arc` once and use only that snapshot.
struct ModelInner {
    predictor: Box<dyn Predictor>,
    name: String,
    version: u64,
    checkpoint: Option<String>,
}

/// One admitted request parked in the queue with its reply stream.
struct Pending {
    request: PredictRequest,
    stream: TcpStream,
    enqueued: Instant,
    deadline: Instant,
}

struct Shared {
    cfg: ServeConfig,
    addr: SocketAddr,
    queue: Mutex<VecDeque<Pending>>,
    queue_cv: Condvar,
    stop: AtomicBool,
    model: RwLock<Arc<ModelInner>>,
    loader: Option<Loader>,
    next_id: AtomicU64,
}

impl Shared {
    fn trigger_stop(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue_cv.notify_all();
        // Wake every accept thread blocked in accept() with throwaway
        // connections (same pattern as TelemetryServer).
        for _ in 0..self.cfg.accept_threads {
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// Handle to a running inference server. Dropping it (or calling
/// [`stop`](PredictServer::stop)) shuts everything down.
pub struct PredictServer {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl PredictServer {
    /// Binds `cfg.addr` and starts the accept threads, the batcher, and
    /// the execution pool. `predictor` is the initial model (version 1);
    /// `loader` enables `POST /reload`.
    pub fn start(
        cfg: ServeConfig,
        predictor: Box<dyn Predictor>,
        checkpoint: Option<String>,
        loader: Option<Loader>,
    ) -> std::io::Result<PredictServer> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let name = predictor.name();
        let shared = Arc::new(Shared {
            addr,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            model: RwLock::new(Arc::new(ModelInner {
                predictor,
                name,
                version: 1,
                checkpoint,
            })),
            loader,
            next_id: AtomicU64::new(1),
            cfg,
        });

        let mut handles = Vec::new();
        for i in 0..shared.cfg.accept_threads.max(1) {
            let listener = listener.try_clone()?;
            let sh = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("serve-accept-{i}"))
                    .spawn(move || accept_loop(listener, &sh))?,
            );
        }
        let sh = Arc::clone(&shared);
        handles.push(
            std::thread::Builder::new()
                .name("serve-batcher".into())
                .spawn(move || batcher_loop(&sh))?,
        );

        Ok(PredictServer { shared, handles })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Current model version (starts at 1, bumped by each reload).
    pub fn model_version(&self) -> u64 {
        self.shared.model.read().unwrap().version
    }

    /// Stops the server and joins all threads.
    pub fn stop(mut self) {
        self.shutdown();
    }

    /// Blocks until the server stops (e.g. via `POST /shutdown`).
    pub fn wait(mut self) {
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }

    fn shutdown(&mut self) {
        self.shared.trigger_stop();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for PredictServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, sh: &Shared) {
    for conn in listener.incoming() {
        if sh.stop.load(Ordering::SeqCst) {
            break;
        }
        if let Ok(stream) = conn {
            handle_conn(stream, sh);
        }
    }
}

/// Reads, routes, and either answers inline (probes, errors, admin) or
/// parks the request in the batch queue (`/v1/predict` — the batcher
/// answers those).
fn handle_conn(mut stream: TcpStream, sh: &Shared) {
    let limits = HttpLimits {
        max_body_bytes: sh.cfg.max_body_bytes,
        read_deadline: Duration::from_millis(sh.cfg.read_deadline_ms),
        ..HttpLimits::default()
    };
    let req = match read_request(&mut stream, &limits) {
        Ok(req) => req,
        Err(e) => {
            write_error(&mut stream, &e);
            return;
        }
    };

    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/predict") => handle_predict(stream, sh, &req.body),
        ("GET", "/healthz") => {
            let model = sh.model.read().unwrap().clone();
            let depth = sh.queue.lock().unwrap().len();
            let body = Obj::new()
                .str("status", "ok")
                .str("model", &model.name)
                .u64("version", model.version)
                .u64("queue_depth", depth as u64)
                .finish();
            write_response(
                &mut stream,
                "200 OK",
                "application/json; charset=utf-8",
                body.as_bytes(),
            );
        }
        ("GET", "/metrics") => {
            let body = render_prometheus(metrics::global());
            write_response(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                body.as_bytes(),
            );
        }
        ("POST", "/reload") => handle_reload(stream, sh, &req.body),
        ("POST", "/shutdown") => {
            write_response(
                &mut stream,
                "200 OK",
                "application/json; charset=utf-8",
                b"{\"ok\":true}",
            );
            sh.trigger_stop();
        }
        ("GET", "/") => {
            write_response(
                &mut stream,
                "200 OK",
                "text/plain; charset=utf-8",
                b"adaptraj serve\nroutes: POST /v1/predict | GET /healthz | GET /metrics | POST /reload | POST /shutdown\n",
            );
        }
        (_, "/v1/predict" | "/reload" | "/shutdown") => {
            write_json_error(
                &mut stream,
                "405 Method Not Allowed",
                "method_not_allowed",
                "use POST for this route",
            );
        }
        _ => {
            write_json_error(&mut stream, "404 Not Found", "not_found", "unknown route");
        }
    }
}

/// Decodes and admits one predict request; on success the stream moves
/// into the queue and the batcher owns the response.
fn handle_predict(mut stream: TcpStream, sh: &Shared, body: &[u8]) {
    metrics::global().counter("serve.requests_total").incr();
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => {
            write_json_error(
                &mut stream,
                "400 Bad Request",
                "invalid_json",
                "body is not UTF-8",
            );
            return;
        }
    };
    let request = match codec::decode_request(text) {
        Ok(r) => r,
        Err(e) => {
            metrics::global().counter("serve.bad_request_total").incr();
            write_json_error(&mut stream, "400 Bad Request", e.code, &e.message);
            return;
        }
    };

    let now = Instant::now();
    let pending = Pending {
        request,
        stream,
        enqueued: now,
        deadline: now + Duration::from_millis(sh.cfg.deadline_ms),
    };
    let mut q = sh.queue.lock().unwrap();
    if q.len() >= sh.cfg.queue_cap || sh.stop.load(Ordering::SeqCst) {
        drop(q);
        metrics::global().counter("serve.rejected_total").incr();
        let mut stream = pending.stream;
        write_json_error(
            &mut stream,
            "503 Service Unavailable",
            "overloaded",
            "admission queue is full, retry with backoff",
        );
        return;
    }
    q.push_back(pending);
    metrics::global()
        .gauge("serve.queue_depth")
        .set(q.len() as f64);
    drop(q);
    sh.queue_cv.notify_one();
}

fn handle_reload(mut stream: TcpStream, sh: &Shared, body: &[u8]) {
    let Some(loader) = &sh.loader else {
        write_json_error(
            &mut stream,
            "400 Bad Request",
            "reload_unavailable",
            "server was started without a checkpoint loader",
        );
        return;
    };
    // Optional body: {"checkpoint": "path"}; default re-reads the
    // current checkpoint path.
    let requested = std::str::from_utf8(body)
        .ok()
        .filter(|t| !t.trim().is_empty())
        .and_then(|t| Value::parse(t).ok())
        .and_then(|v| {
            v.get("checkpoint")
                .and_then(|c| c.as_str().map(String::from))
        });
    let checkpoint = match requested.or_else(|| sh.model.read().unwrap().checkpoint.clone()) {
        Some(c) => c,
        None => {
            write_json_error(
                &mut stream,
                "400 Bad Request",
                "invalid_request",
                "no checkpoint path: pass {\"checkpoint\": \"...\"} or start with --checkpoint",
            );
            return;
        }
    };
    match loader(&checkpoint) {
        Ok(predictor) => {
            let name = predictor.name();
            let mut slot = sh.model.write().unwrap();
            let version = slot.version + 1;
            *slot = Arc::new(ModelInner {
                predictor,
                name: name.clone(),
                version,
                checkpoint: Some(checkpoint.clone()),
            });
            drop(slot);
            metrics::global().counter("serve.reloads_total").incr();
            let body = Obj::new()
                .bool("ok", true)
                .str("model", &name)
                .u64("version", version)
                .str("checkpoint", &checkpoint)
                .finish();
            write_response(
                &mut stream,
                "200 OK",
                "application/json; charset=utf-8",
                body.as_bytes(),
            );
        }
        Err(msg) => {
            // The old model keeps serving; a bad checkpoint is a no-op.
            metrics::global()
                .counter("serve.reload_failed_total")
                .incr();
            write_json_error(&mut stream, "400 Bad Request", "reload_failed", &msg);
        }
    }
}

/// The coalescing loop: sleep until work arrives, give followers up to
/// `batch_window_us` to join (early-flush at a full job), then drain and
/// execute everything queued.
fn batcher_loop(sh: &Shared) {
    let pool = WorkerPool::new(sh.cfg.workers.max(1));
    loop {
        let mut q = sh.queue.lock().unwrap();
        while q.is_empty() && !sh.stop.load(Ordering::SeqCst) {
            q = sh.queue_cv.wait(q).unwrap();
        }
        if sh.stop.load(Ordering::SeqCst) && q.is_empty() {
            return;
        }

        // Coalescing window, anchored at the first request's arrival.
        let window_end = q.front().map(|p| p.enqueued).unwrap_or_else(Instant::now)
            + Duration::from_micros(sh.cfg.batch_window_us);
        while q.len() < MAX_WINDOWS_PER_JOB && !sh.stop.load(Ordering::SeqCst) {
            let Some(remaining) = window_end.checked_duration_since(Instant::now()) else {
                break;
            };
            let (guard, timeout) = sh.queue_cv.wait_timeout(q, remaining).unwrap();
            q = guard;
            if timeout.timed_out() {
                break;
            }
        }

        let pending: Vec<Pending> = q.drain(..).collect();
        metrics::global().gauge("serve.queue_depth").set(0.0);
        drop(q);
        execute_batch(sh, &pool, pending);

        if sh.stop.load(Ordering::SeqCst) {
            // Drain any stragglers admitted during the last cycle.
            let rest: Vec<Pending> = sh.queue.lock().unwrap().drain(..).collect();
            for mut p in rest {
                write_json_error(
                    &mut p.stream,
                    "503 Service Unavailable",
                    "shutting_down",
                    "server is shutting down",
                );
            }
            return;
        }
    }
}

/// Runs one drained batch: expire deadlines, chunk into jobs, execute on
/// the pool against a single model snapshot, write every response.
fn execute_batch(sh: &Shared, pool: &WorkerPool, pending: Vec<Pending>) {
    let now = Instant::now();
    let mut live: Vec<Pending> = Vec::with_capacity(pending.len());
    for mut p in pending {
        if now > p.deadline {
            metrics::global()
                .counter("serve.deadline_expired_total")
                .incr();
            write_json_error(
                &mut p.stream,
                "504 Gateway Timeout",
                "deadline_exceeded",
                "request exceeded its deadline before execution",
            );
        } else {
            live.push(p);
        }
    }
    if live.is_empty() {
        return;
    }

    // One snapshot per cycle: a concurrent /reload swap cannot tear a
    // batch — every window in it runs on this (version, params) pair.
    let model = sh.model.read().unwrap().clone();
    let jobs: Vec<Vec<Pending>> = chunk_jobs(live);
    let exec_start = Instant::now();
    let results = pool.map(&jobs, |_, chunk| {
        run_job(model.predictor.as_ref(), chunk, sh)
    });
    let exec_ms = exec_start.elapsed().as_secs_f64() * 1e3;
    metrics::global().histogram("serve.exec_ms").record(exec_ms);

    match results {
        Ok(per_job) => {
            for (mut chunk, modes_per_window) in jobs.into_iter().zip(per_job) {
                let batch_windows = chunk.len();
                metrics::global()
                    .histogram("serve.batch_windows")
                    .record(batch_windows as f64);
                for (p, modes) in chunk.iter_mut().zip(modes_per_window) {
                    let queue_ms = (exec_start - p.enqueued).as_secs_f64() * 1e3;
                    metrics::global()
                        .histogram("serve.queue_ms")
                        .record(queue_ms);
                    let body = codec::encode_response(
                        &model.name,
                        model.version,
                        p.request.seed,
                        &modes,
                        batch_windows,
                        queue_ms,
                        exec_ms,
                    );
                    metrics::global().counter("serve.responses_ok_total").incr();
                    write_response(
                        &mut p.stream,
                        "200 OK",
                        "application/json; charset=utf-8",
                        body.as_bytes(),
                    );
                }
            }
        }
        Err(e) => {
            // A panicked job fails the whole cycle loudly (it should be
            // impossible for validated input); every waiter gets a 500.
            metrics::global()
                .counter("serve.internal_error_total")
                .incr();
            let msg = format!("batched execution failed: {e}");
            for mut chunk in jobs {
                for p in chunk.iter_mut() {
                    write_json_error(&mut p.stream, "500 Internal Server Error", "internal", &msg);
                }
            }
        }
    }
}

/// Splits admitted requests into jobs of at most [`MAX_WINDOWS_PER_JOB`]
/// windows, preserving arrival order.
fn chunk_jobs(live: Vec<Pending>) -> Vec<Vec<Pending>> {
    let mut jobs: Vec<Vec<Pending>> = Vec::new();
    for p in live {
        match jobs.last_mut() {
            Some(job) if job.len() < MAX_WINDOWS_PER_JOB => job.push(p),
            _ => jobs.push(vec![p]),
        }
    }
    jobs
}

/// Executes one job: `kmax` batched sample passes over the chunk's
/// windows, each request keeping its first `k` modes. Per-window rng
/// streams seeded from each request's seed make the result bit-identical
/// to `predict_k(window, k, Rng::seed_from(seed))` offline.
fn run_job(predictor: &dyn Predictor, chunk: &[Pending], sh: &Shared) -> Vec<Vec<Vec<Point>>> {
    let ids: Vec<u64> = chunk
        .iter()
        .map(|_| sh.next_id.fetch_add(1, Ordering::Relaxed))
        .collect();
    let windows: Vec<&adaptraj_data::trajectory::TrajWindow> =
        chunk.iter().map(|p| &p.request.window).collect();
    let batch = WindowBatch::new(windows, ids);
    let mut rngs: Vec<Rng> = chunk
        .iter()
        .map(|p| Rng::seed_from(p.request.seed))
        .collect();
    let kmax = chunk.iter().map(|p| p.request.k).max().unwrap_or(1);

    let mut modes: Vec<Vec<Vec<Point>>> = vec![Vec::with_capacity(kmax); chunk.len()];
    for _ in 0..kmax {
        let sample = predictor.predict_batch(&batch, &mut rngs);
        for (b, points) in sample.into_iter().enumerate() {
            if modes[b].len() < chunk[b].request.k {
                modes[b].push(points);
            }
        }
    }
    modes
}
