//! The predict JSON codec: wire format of `POST /v1/predict`.
//!
//! Scenes travel in the *normalized* frame the model consumes (focal's
//! last observed position at the origin), exactly as [`TrajWindow`]
//! stores them, so encode→decode is an identity on window contents —
//! including f32 bit patterns: coordinates are printed as shortest
//! round-trip f64 (`adaptraj_obs::json::push_f64`), and f32→f64→text→
//! f64→f32 is exact.
//!
//! Decode is strict: protocol horizons are enforced (`obs` must be
//! exactly `T_OBS` points, `fut` empty or exactly `T_PRED`), and every
//! coordinate must be finite — NaN/Inf never reach the tape, where the
//! health tripwires would otherwise fire server-side (a request bug must
//! be a `400`, not an incident).

use adaptraj_data::domain::DomainId;
use adaptraj_data::trajectory::{Point, TrajWindow, T_OBS, T_PRED};
use adaptraj_obs::json::{Arr, Obj, Value};

/// Upper bound on neighbors per scene: a request is a single camera
/// scene, not a crowd dump; this bounds per-request work.
pub const MAX_NEIGHBORS: usize = 256;

/// Hard cap on best-of-k samples per request.
pub const MAX_K: usize = 20;

/// A decoded predict request.
#[derive(Debug, Clone)]
pub struct PredictRequest {
    pub window: TrajWindow,
    /// Rng seed for the per-window sample stream; the same seed replayed
    /// through the offline path (`Predictor::predict_k`) reproduces the
    /// served trajectories bit for bit.
    pub seed: u64,
    /// Number of sampled modes (best-of-k), `1..=MAX_K`.
    pub k: usize,
}

/// Structured decode error: `code` is machine-readable and stable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    pub code: &'static str,
    pub message: String,
}

fn err(code: &'static str, message: impl Into<String>) -> CodecError {
    CodecError {
        code,
        message: message.into(),
    }
}

/// Wire tag of a domain (matches the CLI's domain tags).
pub fn domain_tag(d: DomainId) -> &'static str {
    match d {
        DomainId::EthUcy => "eth_ucy",
        DomainId::LCas => "l_cas",
        DomainId::Syi => "syi",
        DomainId::Sdd => "sdd",
    }
}

fn parse_domain_tag(tag: &str) -> Result<DomainId, CodecError> {
    match tag.to_ascii_lowercase().as_str() {
        "eth_ucy" | "ethucy" | "eth&ucy" => Ok(DomainId::EthUcy),
        "l_cas" | "lcas" | "l-cas" => Ok(DomainId::LCas),
        "syi" => Ok(DomainId::Syi),
        "sdd" => Ok(DomainId::Sdd),
        other => Err(err(
            "unknown_domain",
            format!("unknown domain '{other}' (expected eth_ucy | l_cas | syi | sdd)"),
        )),
    }
}

fn point_json(p: Point) -> String {
    Arr::new()
        .push_f64(p[0] as f64)
        .push_f64(p[1] as f64)
        .finish()
}

fn track_json(track: &[Point]) -> String {
    let mut a = Arr::new();
    for &p in track {
        a = a.push_raw(&point_json(p));
    }
    a.finish()
}

/// Encodes a normalized window as the `scene` object of the wire format.
pub fn encode_scene(w: &TrajWindow) -> String {
    let mut neighbors = Arr::new();
    for n in &w.neighbors {
        neighbors = neighbors.push_raw(&track_json(n));
    }
    Obj::new()
        .str("domain", domain_tag(w.domain))
        .raw("obs", &track_json(&w.obs))
        .raw("fut", &track_json(&w.fut))
        .raw("neighbors", &neighbors.finish())
        .raw("origin", &point_json(w.origin))
        .finish()
}

/// Encodes a full predict request body.
pub fn encode_request(w: &TrajWindow, seed: u64, k: usize) -> String {
    Obj::new()
        .raw("scene", &encode_scene(w))
        .u64("seed", seed)
        .u64("k", k as u64)
        .finish()
}

fn decode_point(v: &Value, what: &str) -> Result<Point, CodecError> {
    let items = v
        .as_array()
        .ok_or_else(|| err("invalid_scene", format!("{what} must be a [x, y] array")))?;
    if items.len() != 2 {
        return Err(err(
            "invalid_scene",
            format!(
                "{what} must have exactly 2 coordinates, got {}",
                items.len()
            ),
        ));
    }
    let mut p = [0.0f32; 2];
    for (i, item) in items.iter().enumerate() {
        let x = item.as_f64().ok_or_else(|| {
            err(
                "invalid_scene",
                format!("{what} coordinate {i} must be a number"),
            )
        })?;
        if !x.is_finite() {
            return Err(err(
                "non_finite",
                format!("{what} coordinate {i} is not finite"),
            ));
        }
        let xf = x as f32;
        if !xf.is_finite() {
            return Err(err(
                "non_finite",
                format!("{what} coordinate {i} overflows f32"),
            ));
        }
        p[i] = xf;
    }
    Ok(p)
}

fn decode_track(v: &Value, what: &str, want_len: usize) -> Result<Vec<Point>, CodecError> {
    let items = v.as_array().ok_or_else(|| {
        err(
            "invalid_scene",
            format!("{what} must be an array of points"),
        )
    })?;
    if items.len() != want_len {
        return Err(err(
            "invalid_scene",
            format!("{what} must have {want_len} points, got {}", items.len()),
        ));
    }
    items
        .iter()
        .enumerate()
        .map(|(i, p)| decode_point(p, &format!("{what}[{i}]")))
        .collect()
}

/// Decodes the `scene` object into a normalized window. `fut` and
/// `origin` are optional (a live request has no ground-truth future);
/// an absent or empty `fut` decodes as `T_PRED` zeros.
pub fn decode_scene(v: &Value) -> Result<TrajWindow, CodecError> {
    let domain = parse_domain_tag(
        v.get("domain")
            .and_then(|d| d.as_str())
            .ok_or_else(|| err("invalid_scene", "scene.domain (string) is required"))?,
    )?;
    let obs = decode_track(
        v.get("obs")
            .ok_or_else(|| err("invalid_scene", "scene.obs is required"))?,
        "scene.obs",
        T_OBS,
    )?;
    let fut = match v.get("fut") {
        None => vec![[0.0, 0.0]; T_PRED],
        Some(f) => {
            let items = f
                .as_array()
                .ok_or_else(|| err("invalid_scene", "scene.fut must be an array of points"))?;
            if items.is_empty() {
                vec![[0.0, 0.0]; T_PRED]
            } else {
                decode_track(f, "scene.fut", T_PRED)?
            }
        }
    };
    let neighbors = match v.get("neighbors") {
        None => Vec::new(),
        Some(n) => {
            let items = n.as_array().ok_or_else(|| {
                err(
                    "invalid_scene",
                    "scene.neighbors must be an array of tracks",
                )
            })?;
            if items.len() > MAX_NEIGHBORS {
                return Err(err(
                    "invalid_scene",
                    format!(
                        "at most {MAX_NEIGHBORS} neighbors per scene, got {}",
                        items.len()
                    ),
                ));
            }
            items
                .iter()
                .enumerate()
                .map(|(i, t)| decode_track(t, &format!("scene.neighbors[{i}]"), T_OBS))
                .collect::<Result<Vec<_>, _>>()?
        }
    };
    let origin = match v.get("origin") {
        None => [0.0, 0.0],
        Some(o) => decode_point(o, "scene.origin")?,
    };
    Ok(TrajWindow {
        obs,
        fut,
        neighbors,
        domain,
        origin,
    })
}

/// Decodes a full predict request body. `seed` is required (it is the
/// reproducibility contract); `k` defaults to 1.
pub fn decode_request(body: &str) -> Result<PredictRequest, CodecError> {
    let v =
        Value::parse(body).map_err(|e| err("invalid_json", format!("body is not JSON: {e}")))?;
    let scene = v
        .get("scene")
        .ok_or_else(|| err("invalid_scene", "request.scene is required"))?;
    let window = decode_scene(scene)?;
    let seed = v.get("seed").and_then(|s| s.as_u64()).ok_or_else(|| {
        err(
            "invalid_request",
            "request.seed (unsigned integer) is required",
        )
    })?;
    let k = match v.get("k") {
        None => 1,
        Some(kv) => kv
            .as_u64()
            .ok_or_else(|| err("invalid_request", "request.k must be an unsigned integer"))?
            as usize,
    };
    if k == 0 || k > MAX_K {
        return Err(err(
            "invalid_request",
            format!("request.k must be in 1..={MAX_K}, got {k}"),
        ));
    }
    Ok(PredictRequest { window, seed, k })
}

/// Encodes mode trajectories as the `modes` array of the response (also
/// the golden-file format `serve_gate` pins CI against).
pub fn encode_modes(modes: &[Vec<Point>]) -> String {
    let mut arr = Arr::new();
    for m in modes {
        arr = arr.push_raw(&mode_json(m));
    }
    arr.finish()
}

/// Per-mode metadata alongside each sampled trajectory.
fn mode_json(trajectory: &[Point]) -> String {
    let end = trajectory.last().copied().unwrap_or([0.0, 0.0]);
    let displacement = (end[0] as f64).hypot(end[1] as f64);
    Obj::new()
        .raw("trajectory", &track_json(trajectory))
        .raw("endpoint", &point_json(end))
        .f64("displacement", displacement)
        .finish()
}

/// Encodes a successful predict response: the k sampled modes (in sample
/// order — mode `s` is the model's s-th draw from the request seed) plus
/// serving metadata.
#[allow(clippy::too_many_arguments)]
pub fn encode_response(
    model: &str,
    version: u64,
    seed: u64,
    modes: &[Vec<Point>],
    batch_windows: usize,
    queue_ms: f64,
    exec_ms: f64,
) -> String {
    Obj::new()
        .str("schema", "adaptraj-serve/v1")
        .str("model", model)
        .u64("version", version)
        .u64("seed", seed)
        .u64("k", modes.len() as u64)
        .raw("modes", &encode_modes(modes))
        .u64("batch_windows", batch_windows as u64)
        .f64("queue_ms", queue_ms)
        .f64("exec_ms", exec_ms)
        .finish()
}

/// Extracts the mode trajectories from a response document (the inverse
/// of [`encode_response`], used by tests and `serve_gate`).
pub fn decode_response_modes(body: &str) -> Result<Vec<Vec<Point>>, CodecError> {
    let v = Value::parse(body).map_err(|e| err("invalid_json", format!("bad response: {e}")))?;
    let modes = v
        .get("modes")
        .and_then(|m| m.as_array())
        .ok_or_else(|| err("invalid_response", "response.modes missing"))?;
    modes
        .iter()
        .enumerate()
        .map(|(i, m)| {
            decode_track(
                m.get("trajectory").ok_or_else(|| {
                    err("invalid_response", format!("modes[{i}].trajectory missing"))
                })?,
                &format!("modes[{i}].trajectory"),
                T_PRED,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_window() -> TrajWindow {
        TrajWindow {
            obs: (0..T_OBS)
                .map(|t| [0.25 * t as f32 - 1.75, 0.125 * t as f32])
                .collect(),
            fut: (0..T_PRED)
                .map(|t| [0.3 * t as f32, -0.1 * t as f32])
                .collect(),
            neighbors: vec![(0..T_OBS).map(|t| [1.0 + 0.1 * t as f32, -0.5]).collect()],
            domain: DomainId::LCas,
            origin: [13.25, -2.5],
        }
    }

    #[test]
    fn scene_round_trips_bit_exactly() {
        let w = sample_window();
        let json = encode_scene(&w);
        let v = Value::parse(&json).unwrap();
        let back = decode_scene(&v).unwrap();
        assert_eq!(back.domain, w.domain);
        assert_eq!(back.obs, w.obs);
        assert_eq!(back.fut, w.fut);
        assert_eq!(back.neighbors, w.neighbors);
        assert_eq!(back.origin, w.origin);
    }

    #[test]
    fn request_decode_defaults_and_validation() {
        let w = sample_window();
        let body = encode_request(&w, 99, 3);
        let req = decode_request(&body).unwrap();
        assert_eq!(req.seed, 99);
        assert_eq!(req.k, 3);

        // k defaults to 1; seed is required.
        let no_k = Obj::new()
            .raw("scene", &encode_scene(&w))
            .u64("seed", 7)
            .finish();
        assert_eq!(decode_request(&no_k).unwrap().k, 1);
        let no_seed = Obj::new().raw("scene", &encode_scene(&w)).finish();
        assert_eq!(
            decode_request(&no_seed).unwrap_err().code,
            "invalid_request"
        );

        let big_k = Obj::new()
            .raw("scene", &encode_scene(&w))
            .u64("seed", 7)
            .u64("k", 999)
            .finish();
        assert_eq!(decode_request(&big_k).unwrap_err().code, "invalid_request");
    }

    #[test]
    fn decode_rejects_non_finite_coordinates() {
        // JSON has no NaN literal, but huge exponents parse to +Inf.
        let body = r#"{"scene":{"domain":"syi","obs":[[1e999,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0]]},"seed":1}"#;
        let e = decode_request(body).unwrap_err();
        assert_eq!(e.code, "non_finite");
        // f64 values beyond f32 range are rejected too, not squashed.
        let body = r#"{"scene":{"domain":"syi","obs":[[1e60,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0],[0,0]]},"seed":1}"#;
        assert_eq!(decode_request(body).unwrap_err().code, "non_finite");
    }

    #[test]
    fn decode_enforces_protocol_horizons() {
        let body = r#"{"scene":{"domain":"sdd","obs":[[0,0]]},"seed":1}"#;
        let e = decode_request(body).unwrap_err();
        assert_eq!(e.code, "invalid_scene");
        assert!(e.message.contains("8 points"), "{}", e.message);
    }

    #[test]
    fn empty_future_decodes_to_zeros() {
        let mut w = sample_window();
        w.fut.clear();
        let json = encode_scene(&w);
        let back = decode_scene(&Value::parse(&json).unwrap()).unwrap();
        assert_eq!(back.fut, vec![[0.0f32, 0.0f32]; T_PRED]);
    }

    #[test]
    fn response_modes_round_trip() {
        let modes: Vec<Vec<Point>> = (0..3)
            .map(|s| {
                (0..T_PRED)
                    .map(|t| [s as f32 + 0.1 * t as f32, -(t as f32)])
                    .collect()
            })
            .collect();
        let body = encode_response("PECNet-vanilla", 2, 42, &modes, 4, 0.8, 1.6);
        let back = decode_response_modes(&body).unwrap();
        assert_eq!(back, modes);
        let v = Value::parse(&body).unwrap();
        assert_eq!(v.get("batch_windows").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("model").unwrap().as_str(), Some("PECNet-vanilla"));
    }
}
