//! CI gate for the inference service (see `scripts/ci.sh`): drives a
//! *running* `adaptraj serve` instance over real sockets and checks the
//! serving contract from the outside.
//!
//! ```text
//! serve_gate --addr 127.0.0.1:PORT --golden results/SERVE_golden.json
//! serve_gate --addr ... --golden ... --write-golden   # regenerate
//! serve_gate --addr ... --flood 64                    # expect >= 1 503
//! serve_gate --addr ... --shutdown                    # clean stop
//! ```
//!
//! The golden check POSTs a fixed synthetic scene with a fixed seed and
//! compares the returned mode trajectories against the committed golden
//! file **bit for bit** (f32 bit patterns, not tolerances): served
//! predictions must be exactly reproducible for a given checkpoint +
//! seed, per the serving contract.

use adaptraj_data::domain::DomainId;
use adaptraj_data::trajectory::{Point, TrajWindow, T_OBS, T_PRED};
use adaptraj_obs::json::{Obj, Value};
use adaptraj_serve::codec;
use std::io::{Read, Write};
use std::net::TcpStream;

const USAGE: &str =
    "usage: serve_gate --addr HOST:PORT [--golden FILE [--write-golden]] [--flood N] [--shutdown]";

const GOLDEN_SEED: u64 = 20240108;
const GOLDEN_K: usize = 3;

fn fail(msg: &str) -> ! {
    eprintln!("serve_gate: FAIL: {msg}");
    std::process::exit(1);
}

/// The fixed probe scene: a focal agent walking +x with two neighbors,
/// deterministic coordinates, eth_ucy domain. Any change here invalidates
/// committed goldens — regenerate with `--write-golden`.
fn golden_window() -> TrajWindow {
    let obs: Vec<Point> = (0..T_OBS)
        .map(|t| [0.4 * t as f32 - 2.8, 0.05 * t as f32])
        .collect();
    let n1: Vec<Point> = (0..T_OBS).map(|t| [1.5 - 0.1 * t as f32, 0.8]).collect();
    let n2: Vec<Point> = (0..T_OBS).map(|t| [-1.0, -0.6 + 0.2 * t as f32]).collect();
    TrajWindow {
        obs,
        fut: vec![[0.0, 0.0]; T_PRED],
        neighbors: vec![n1, n2],
        domain: DomainId::EthUcy,
        origin: [4.0, 1.0],
    }
}

/// One `Connection: close` HTTP exchange; returns (status code, body).
fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream =
        TcpStream::connect(addr).unwrap_or_else(|e| fail(&format!("connect {addr}: {e}")));
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: gate\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(req.as_bytes())
        .unwrap_or_else(|e| fail(&format!("send {method} {path}: {e}")));
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .unwrap_or_else(|e| fail(&format!("read {method} {path}: {e}")));
    let status: u16 = response
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.get(..3))
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| {
            fail(&format!(
                "unparseable response to {method} {path}: {response:.120}"
            ))
        });
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn bits(modes: &[Vec<Point>]) -> Vec<u32> {
    modes
        .iter()
        .flatten()
        .flat_map(|p| [p[0].to_bits(), p[1].to_bits()])
        .collect()
}

fn check_golden(addr: &str, golden_path: &str, write: bool) {
    // Liveness first: /healthz must answer ok.
    let (status, health) = http(addr, "GET", "/healthz", "");
    if status != 200 {
        fail(&format!("/healthz returned {status}: {health}"));
    }
    let hv = Value::parse(&health).unwrap_or_else(|e| fail(&format!("healthz not JSON: {e}")));
    let model = hv
        .get("model")
        .and_then(|m| m.as_str())
        .unwrap_or_else(|| fail("healthz missing model"))
        .to_string();

    let request = codec::encode_request(&golden_window(), GOLDEN_SEED, GOLDEN_K);
    let (status, body) = http(addr, "POST", "/v1/predict", &request);
    if status != 200 {
        fail(&format!("/v1/predict returned {status}: {body}"));
    }
    let modes = codec::decode_response_modes(&body)
        .unwrap_or_else(|e| fail(&format!("bad predict response: {} ({})", e.message, e.code)));
    if modes.len() != GOLDEN_K {
        fail(&format!("expected {GOLDEN_K} modes, got {}", modes.len()));
    }

    if write {
        let doc = Obj::new()
            .str("schema", "adaptraj-serve-golden/v1")
            .str("model", &model)
            .u64("seed", GOLDEN_SEED)
            .u64("k", GOLDEN_K as u64)
            .raw("modes", &codec::encode_modes(&modes))
            .finish();
        std::fs::write(golden_path, format!("{doc}\n"))
            .unwrap_or_else(|e| fail(&format!("write {golden_path}: {e}")));
        println!("serve_gate: wrote golden {golden_path} (model {model})");
        return;
    }

    let golden_text = std::fs::read_to_string(golden_path).unwrap_or_else(|e| {
        fail(&format!(
            "read {golden_path}: {e} (regenerate with --write-golden)"
        ))
    });
    let gv = Value::parse(&golden_text)
        .unwrap_or_else(|e| fail(&format!("{golden_path} is not JSON: {e}")));
    if gv.get("schema").and_then(|s| s.as_str()) != Some("adaptraj-serve-golden/v1") {
        fail(&format!("{golden_path} has wrong schema"));
    }
    if let Some(gm) = gv.get("model").and_then(|m| m.as_str()) {
        if gm != model {
            fail(&format!("model mismatch: serving {model}, golden is {gm}"));
        }
    }
    let golden_modes = codec::decode_response_modes(&golden_text)
        .unwrap_or_else(|e| fail(&format!("bad golden modes: {}", e.message)));
    if bits(&modes) != bits(&golden_modes) {
        fail("served modes differ from golden (f32 bit mismatch) — model or kernels changed; regenerate with --write-golden if intentional");
    }

    // The metrics surface must expose the serving counters.
    let (status, metrics) = http(addr, "GET", "/metrics", "");
    if status != 200 {
        fail(&format!("/metrics returned {status}"));
    }
    for needle in [
        "serve_requests_total",
        "serve_responses_ok_total",
        "serve_batch_windows",
    ] {
        if !metrics.contains(needle) {
            fail(&format!("/metrics missing {needle}"));
        }
    }
    println!("serve_gate: golden OK ({model}, seed {GOLDEN_SEED}, k {GOLDEN_K}, bit-exact)");
}

/// Fires `n` concurrent predict requests at a server started with a tiny
/// queue; requires at least one 503 (backpressure works) and that every
/// response is either a valid 200 or a structured 503.
fn flood(addr: &str, n: usize) {
    let request = codec::encode_request(&golden_window(), 7, 1);
    let handles: Vec<_> = (0..n)
        .map(|_| {
            let addr = addr.to_string();
            let request = request.clone();
            std::thread::spawn(move || http(&addr, "POST", "/v1/predict", &request))
        })
        .collect();
    let mut ok = 0usize;
    let mut rejected = 0usize;
    for h in handles {
        let (status, body) = h.join().expect("flood client panicked");
        match status {
            200 => {
                codec::decode_response_modes(&body)
                    .unwrap_or_else(|e| fail(&format!("flood 200 with bad body: {}", e.message)));
                ok += 1;
            }
            503 => {
                let v = Value::parse(&body)
                    .unwrap_or_else(|e| fail(&format!("503 body not JSON: {e}")));
                let code = v
                    .get("error")
                    .and_then(|o| o.get("code"))
                    .and_then(|c| c.as_str())
                    .unwrap_or_else(|| fail("503 body missing error.code"));
                if code != "overloaded" {
                    fail(&format!("503 with unexpected code {code}"));
                }
                rejected += 1;
            }
            other => fail(&format!("flood got unexpected status {other}: {body:.200}")),
        }
    }
    if rejected == 0 {
        fail(&format!(
            "flood of {n} produced no 503s — queue cap not enforced"
        ));
    }
    println!("serve_gate: flood OK ({ok} served, {rejected} rejected with structured 503)");
}

fn shutdown(addr: &str) {
    let (status, body) = http(addr, "POST", "/shutdown", "");
    if status != 200 {
        fail(&format!("/shutdown returned {status}: {body}"));
    }
    println!("serve_gate: shutdown accepted");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = None;
    let mut golden = None;
    let mut write_golden = false;
    let mut flood_n = None;
    let mut do_shutdown = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = it.next().cloned(),
            "--golden" => golden = it.next().cloned(),
            "--write-golden" => write_golden = true,
            "--flood" => {
                flood_n = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| fail("--flood takes a count")),
                )
            }
            "--shutdown" => do_shutdown = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown flag {other}\n{USAGE}")),
        }
    }
    let addr = addr.unwrap_or_else(|| fail(&format!("--addr is required\n{USAGE}")));
    if golden.is_none() && flood_n.is_none() && !do_shutdown {
        fail(&format!("nothing to do\n{USAGE}"));
    }
    if let Some(golden) = &golden {
        check_golden(&addr, golden, write_golden);
    }
    if let Some(n) = flood_n {
        flood(&addr, n);
    }
    if do_shutdown {
        shutdown(&addr);
    }
}
