//! Intra-op parallelism: row-splitting large GEMMs across scoped threads.
//!
//! The tensor crate exposes a hook ([`adaptraj_tensor::kernels::set_parallel_rows`])
//! that its GEMM entry points call for sufficiently large products. This
//! module provides the one implementation the workspace uses: partition
//! the output rows into contiguous chunks and run them on freshly spawned
//! `std::thread::scope` helpers, with the calling thread taking the first
//! chunk.
//!
//! # Why scoped threads and not the [`crate::WorkerPool`]
//!
//! Intra-op splits happen *inside* window jobs that are themselves running
//! on pool workers. Routing the sub-work through the pool's shared job
//! queue would let a worker block waiting on sub-jobs that are queued
//! behind other window jobs — a classic nested-dependency deadlock once
//! every worker is blocked the same way. Fresh scoped threads have no
//! shared queue and no slot limit, so a window job → intra-op split nest
//! is deadlock-free *by construction* (pinned by
//! `nested_pool_and_intra_op_split_does_not_deadlock` in
//! `tests/determinism.rs`). The spawn cost (tens of µs per helper) is why
//! the tensor-side flop threshold
//! ([`adaptraj_tensor::kernels::split_min_flops`]) exists: the hook only
//! fires where the kernel runs long enough to amortize it.
//!
//! # Determinism
//!
//! Row partitioning never changes what a thread computes, only *who*
//! computes it: each output element is still produced start-to-finish by
//! exactly one thread with the exact accumulation order of the unsplit
//! kernel. Results are therefore bit-identical for every thread count,
//! and the goldens/determinism suites run with splitting force-enabled to
//! pin that.

use adaptraj_tensor::kernels;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

static INSTALLED_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Installs the scoped-thread row splitter with `threads` total lanes
/// (including the calling thread). `threads <= 1` removes the hook and
/// restores single-threaded kernels. Returns the previous lane count.
///
/// Process-global, like the kernel dispatch itself: call it once at
/// startup (the CLI does, via [`install_from_env`]).
pub fn install(threads: usize) -> usize {
    let prev = INSTALLED_THREADS.swap(threads.max(1), Ordering::Relaxed);
    if threads <= 1 {
        kernels::set_parallel_rows(None);
        return prev;
    }
    kernels::set_parallel_rows(Some(Arc::new(
        move |rows: usize, body: &(dyn Fn(usize, usize) + Sync)| {
            split_rows(threads, rows, body);
        },
    )));
    prev
}

/// Runs `body` over `[0, rows)` in up to `threads` contiguous chunks:
/// helpers take chunks 1.., the caller runs chunk 0 while they work.
fn split_rows(threads: usize, rows: usize, body: &(dyn Fn(usize, usize) + Sync)) {
    let lanes = threads.min(rows);
    if lanes <= 1 {
        body(0, rows);
        return;
    }
    let chunk = rows.div_ceil(lanes);
    std::thread::scope(|s| {
        for lane in 1..lanes {
            let start = lane * chunk;
            let end = ((lane + 1) * chunk).min(rows);
            if start < end {
                s.spawn(move || body(start, end));
            }
        }
        body(0, chunk.min(rows));
    });
}

/// Reads `ADAPTRAJ_INTRA_OP_THREADS` (default: 1 = off) and installs the
/// splitter accordingly. Returns the lane count now in effect.
///
/// Default-off is deliberate on two grounds: the outer per-window pool is
/// the primary parallelism axis (oversubscribing it with intra-op helpers
/// degrades both), and single-threaded kernels keep the `--workers 1`
/// baseline structurally sequential. Turn it on for few-window/large-GEMM
/// regimes (big serving batches, attention backbones).
pub fn install_from_env() -> usize {
    let threads = std::env::var("ADAPTRAJ_INTRA_OP_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(1);
    install(threads);
    threads.max(1)
}

/// The lane count most recently installed (1 when the hook is off) —
/// recorded in the bench JSON config.
pub fn installed_threads() -> usize {
    INSTALLED_THREADS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The hook is process-global; tests that install/remove it serialize.
    static HOOK_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn split_rows_covers_exactly_once_in_any_partition() {
        for (threads, rows) in [(2, 10), (3, 7), (4, 4), (8, 3), (5, 1), (2, 0), (3, 100)] {
            let hits: Vec<AtomicUsize> = (0..rows).map(|_| AtomicUsize::new(0)).collect();
            split_rows(threads, rows, &|start, end| {
                for h in &hits[start..end] {
                    h.fetch_add(1, Ordering::Relaxed);
                }
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(
                    h.load(Ordering::Relaxed),
                    1,
                    "row {i} (threads={threads}, rows={rows})"
                );
            }
        }
    }

    #[test]
    fn install_and_remove_round_trip() {
        let _guard = HOOK_LOCK.lock().unwrap();
        install(3);
        assert_eq!(installed_threads(), 3);
        assert!(kernels::parallel_rows_installed());
        install(1);
        assert_eq!(installed_threads(), 1);
        assert!(!kernels::parallel_rows_installed());
    }

    #[test]
    fn split_matmul_is_bitwise_identical_for_any_lane_count() {
        let _guard = HOOK_LOCK.lock().unwrap();
        use adaptraj_tensor::{rng::Rng, Tensor};
        let mut rng = Rng::seed_from(42);
        let a = Tensor::randn(33, 64, 0.0, 1.0, &mut rng);
        let b = Tensor::randn(64, 96, 0.0, 1.0, &mut rng);
        let reference = a.matmul(&b);
        let prev_min = kernels::split_min_flops();
        kernels::set_split_min_flops(0);
        for lanes in [2, 3, 8] {
            install(lanes);
            let split = a.matmul(&b);
            assert_eq!(
                reference
                    .data()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                split.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "lanes={lanes}"
            );
        }
        install(1);
        kernels::set_split_min_flops(prev_min);
    }

    #[test]
    fn env_install_defaults_to_off() {
        let _guard = HOOK_LOCK.lock().unwrap();
        // The test runner environment does not set the variable; the
        // default must leave kernels single-threaded.
        if std::env::var("ADAPTRAJ_INTRA_OP_THREADS").is_err() {
            assert_eq!(install_from_env(), 1);
            assert!(!kernels::parallel_rows_installed());
        }
    }
}
