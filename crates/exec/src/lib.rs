//! # adaptraj-exec
//!
//! A fixed-size worker-pool executor for data-parallel per-window work:
//! training forward/backward passes, inference sampling, and metric
//! evaluation are all embarrassingly parallel across trajectory windows,
//! and this crate provides the one primitive they share — a blocking,
//! order-preserving [`WorkerPool::map`] over a slice.
//!
//! Design constraints (see DESIGN.md, "Execution model"):
//!
//! - **Zero external dependencies.** std threads + mpsc channels only
//!   (plus the workspace's own `adaptraj-obs` for instrumentation); the
//!   workspace stays registry-free.
//! - **Deterministic reduction.** `map` returns outputs in item order, so
//!   callers can fold results (gradients, losses, metrics) in exactly the
//!   order the sequential loop would have — bit-identical regardless of
//!   worker count. Randomness must be pre-split by the caller (per-item
//!   seeds), never drawn from a shared stream inside the closure.
//! - **Identical degenerate path.** A pool built with `workers <= 1` runs
//!   `map` inline on the calling thread with no channels at all, so
//!   `--workers 1` is structurally the sequential loop.
//! - **Panic containment.** A panicking job is caught on the worker,
//!   reported as a clean [`ExecError`], and the pool stays usable — no
//!   deadlock, no poisoned state, remaining jobs still drain.
//!
//! The pool is intentionally oblivious to tensors, tapes, and profilers:
//! callers own per-item state (a fresh `Tape`, a seeded `Rng`, a profiler
//! phase re-entered inside the closure) and the pool only moves closures.
//! The one observability hook the pool itself owns is the flight-recorder
//! instrumentation around each job: when `obs::timeline` capture is on,
//! every item records a `queue_wait` span (enqueue → start) and a
//! `job_run` span (start → finish) on its worker's lane, and the pool
//! publishes `exec.queue_depth` / `exec.worker_utilization` gauges into
//! the global metrics registry. All of it is off-path: one relaxed atomic
//! load per job when the timeline is disabled, and never any effect on
//! dispatch order or result order.

pub mod intra_op;

use adaptraj_obs::{health, metrics, timeline};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// An erased job shipped to a worker thread.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Error surfaced by [`WorkerPool::map`] when a job panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A job panicked; carries the item index and the panic payload
    /// rendered as text (when it was a `&str`/`String`).
    JobPanicked { index: usize, message: String },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::JobPanicked { index, message } => {
                write!(f, "worker job for item {index} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Pool-load bookkeeping published as global gauges. The raw counts are
/// per-pool atomics; the gauge handles point into the process-global
/// metrics registry, so `/metrics` scrapes see the live queue depth and
/// busy fraction of whichever pool is running.
struct PoolGauges {
    queued: AtomicI64,
    busy: AtomicI64,
    workers: f64,
    queue_depth: metrics::GaugeHandle,
    utilization: metrics::GaugeHandle,
}

impl PoolGauges {
    fn new(workers: usize) -> PoolGauges {
        let queue_depth = metrics::global().gauge("exec.queue_depth");
        let utilization = metrics::global().gauge("exec.worker_utilization");
        queue_depth.set(0.0);
        utilization.set(0.0);
        PoolGauges {
            queued: AtomicI64::new(0),
            busy: AtomicI64::new(0),
            workers: workers.max(1) as f64,
            queue_depth,
            utilization,
        }
    }

    fn enqueued(&self) {
        let q = self.queued.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_depth.set(q.max(0) as f64);
    }

    fn started(&self) {
        let q = self.queued.fetch_sub(1, Ordering::Relaxed) - 1;
        self.queue_depth.set(q.max(0) as f64);
        let b = self.busy.fetch_add(1, Ordering::Relaxed) + 1;
        self.utilization.set(b.max(0) as f64 / self.workers);
    }

    fn finished(&self) {
        let b = self.busy.fetch_sub(1, Ordering::Relaxed) - 1;
        self.utilization.set(b.max(0) as f64 / self.workers);
    }
}

/// A fixed-size pool of persistent worker threads sharing one job queue.
///
/// Threads are spawned once at construction and live until the pool is
/// dropped; each [`map`](WorkerPool::map) call dispatches its items onto
/// the shared queue and blocks until every result is back.
pub struct WorkerPool {
    workers: usize,
    tx: Option<mpsc::Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    gauges: PoolGauges,
}

impl WorkerPool {
    /// Builds a pool with `workers` threads. `workers <= 1` spawns no
    /// threads at all: `map` then runs inline on the caller.
    pub fn new(workers: usize) -> Self {
        if workers <= 1 {
            return Self {
                workers: 1,
                tx: None,
                handles: Vec::new(),
                gauges: PoolGauges::new(1),
            };
        }
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("adaptraj-exec-{i}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only while dequeuing, so
                        // workers pull jobs independently.
                        let job = match rx.lock() {
                            Ok(guard) => guard.recv(),
                            Err(poisoned) => poisoned.into_inner().recv(),
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => break, // sender dropped: shut down
                        }
                    })
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Self {
            workers,
            tx: Some(tx),
            handles,
            gauges: PoolGauges::new(workers),
        }
    }

    /// Number of worker slots (1 for the inline pool).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Applies `f` to every item, in parallel across the pool, and returns
    /// the outputs **in item order**.
    ///
    /// Blocks until every dispatched job has reported back, which is what
    /// makes the scoped borrows below sound. If any job panics, the first
    /// panic (by item index) is returned as an [`ExecError`] — after all
    /// other jobs have drained, so the pool is immediately reusable.
    pub fn map<I, O, F>(&self, items: &[I], f: F) -> Result<Vec<O>, ExecError>
    where
        I: Sync,
        O: Send,
        F: Fn(usize, &I) -> O + Sync,
    {
        // Inline path: no threads, no channels — structurally the
        // sequential loop (used for `--workers 1` determinism baselines).
        // It still records the same span *set* as the channel path (the
        // queue_wait spans just have ~zero duration), so a 1-worker trace
        // is comparable with a 4-worker one.
        let Some(tx) = &self.tx else {
            let mut out = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                let enqueue_us = timeline::timeline_enabled().then(timeline::now_us);
                self.gauges.enqueued();
                self.gauges.started();
                if let Some(t0) = enqueue_us {
                    timeline::record_span_since("queue_wait", "exec", t0, Some(("item", i as u64)));
                }
                let span = timeline::span_with_arg("job_run", "exec", ("item", i as u64));
                let r = catch_unwind(AssertUnwindSafe(|| f(i, item)));
                drop(span);
                self.gauges.finished();
                // Inline jobs run in item order, so their health records
                // can be absorbed directly — same sequence the channel
                // path reconstructs from its per-item buffers.
                health::absorb_records(health::take_thread_records());
                match r {
                    Ok(v) => out.push(v),
                    Err(p) => {
                        return Err(ExecError::JobPanicked {
                            index: i,
                            message: panic_message(p),
                        })
                    }
                }
            }
            return Ok(out);
        };

        let (res_tx, res_rx) =
            mpsc::channel::<(usize, std::thread::Result<O>, Vec<health::HealthRecord>)>();
        for (i, item) in items.iter().enumerate() {
            let res_tx = res_tx.clone();
            let f = &f;
            let gauges = &self.gauges;
            let enqueue_us = timeline::timeline_enabled().then(timeline::now_us);
            gauges.enqueued();
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                gauges.started();
                if let Some(t0) = enqueue_us {
                    timeline::record_span_since("queue_wait", "exec", t0, Some(("item", i as u64)));
                }
                let span = timeline::span_with_arg("job_run", "exec", ("item", i as u64));
                let r = catch_unwind(AssertUnwindSafe(|| f(i, item)));
                drop(span);
                gauges.finished();
                // Health incidents buffered on this worker thread during
                // the job travel back with the result, so the dispatcher
                // can absorb them in item order (deterministic for any
                // worker count). Empty (no allocation) while disabled.
                let health_records = health::take_thread_records();
                // The receiver outlives the dispatch loop; a send failure
                // is impossible while `map` is still draining.
                let _ = res_tx.send((i, r, health_records));
            });
            // SAFETY: the job borrows `items`, `f`, `gauges` (a field of
            // `self`), and `res_tx`, all of which outlive this call — `map`
            // does not return until one result per dispatched job has been
            // received below, and every job sends exactly one result (the
            // panic path included, via catch_unwind). Erasing the lifetime
            // to ship the closure through the 'static channel is therefore
            // sound.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) };
            tx.send(job).expect("worker pool shut down mid-map");
        }
        drop(res_tx);

        let mut slots: Vec<Option<O>> = (0..items.len()).map(|_| None).collect();
        let mut record_slots: Vec<Vec<health::HealthRecord>> =
            (0..items.len()).map(|_| Vec::new()).collect();
        let mut first_panic: Option<(usize, String)> = None;
        for _ in 0..items.len() {
            let (i, r, health_records) = res_rx
                .recv()
                .expect("worker exited without reporting a result");
            record_slots[i] = health_records;
            match r {
                Ok(v) => slots[i] = Some(v),
                Err(p) => {
                    let msg = panic_message(p);
                    if first_panic.as_ref().is_none_or(|(j, _)| i < *j) {
                        first_panic = Some((i, msg));
                    }
                }
            }
        }
        // Flush worker health buffers in item order — the global record
        // sequence is then independent of dispatch interleaving.
        for records in record_slots {
            health::absorb_records(records);
        }
        if let Some((index, message)) = first_panic {
            return Err(ExecError::JobPanicked { index, message });
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every job reported exactly once"))
            .collect())
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the sender drains the queue and lets workers exit.
        self.tx.take();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// SplitMix64-style seed mixer: derives an independent per-window RNG seed
/// from the run seed, the (global) epoch, and the window index. Workers
/// seed `Rng::seed_from(window_seed(..))` so every window's random draws
/// are reproducible and independent of both worker count and dispatch
/// order.
pub fn window_seed(run_seed: u64, epoch: u64, window: u64) -> u64 {
    let mut x = run_seed
        ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ window.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_item_order() {
        for workers in [1, 4] {
            let pool = WorkerPool::new(workers);
            let items: Vec<usize> = (0..37).collect();
            let out = pool.map(&items, |i, &x| {
                // Jitter the finish order so ordering is actually exercised.
                if workers > 1 {
                    std::thread::sleep(std::time::Duration::from_micros(
                        ((37 - i) % 5) as u64 * 100,
                    ));
                }
                x * 2
            });
            let expect: Vec<usize> = (0..37).map(|x| x * 2).collect();
            assert_eq!(out.unwrap(), expect, "workers={workers}");
        }
    }

    #[test]
    fn map_borrows_caller_state() {
        let pool = WorkerPool::new(3);
        let base = [10usize, 20, 30, 40];
        let items: Vec<usize> = (0..4).collect();
        // The closure borrows `base` — scoped borrows must be accepted.
        let out = pool.map(&items, |_, &i| base[i] + 1).unwrap();
        assert_eq!(out, vec![11, 21, 31, 41]);
    }

    #[test]
    fn pool_is_reusable_across_maps() {
        let pool = WorkerPool::new(2);
        for round in 0..5 {
            let items: Vec<u64> = (0..16).collect();
            let out = pool.map(&items, |_, &x| x + round).unwrap();
            assert_eq!(out[15], 15 + round);
        }
    }

    #[test]
    fn poisoned_worker_reports_clean_err_and_pool_survives() {
        for workers in [1, 4] {
            let pool = WorkerPool::new(workers);
            let items: Vec<usize> = (0..20).collect();
            let completed = AtomicUsize::new(0);
            let err = pool
                .map(&items, |_, &x| {
                    if x == 7 {
                        panic!("boom at {x}");
                    }
                    completed.fetch_add(1, Ordering::Relaxed);
                    x
                })
                .unwrap_err();
            assert_eq!(
                err,
                ExecError::JobPanicked {
                    index: 7,
                    message: "boom at 7".into()
                },
                "workers={workers}"
            );
            // No deadlock and no poisoned queue: the same pool still works.
            let ok = pool.map(&items[..5], |_, &x| x * 3).unwrap();
            assert_eq!(ok, vec![0, 3, 6, 9, 12]);
        }
    }

    #[test]
    fn earliest_panic_index_wins() {
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..8).collect();
        let err = pool
            .map(&items, |_, &x| {
                if x % 3 == 2 {
                    panic!("p{x}");
                }
                x
            })
            .unwrap_err();
        let ExecError::JobPanicked { index, .. } = err;
        assert_eq!(index, 2);
    }

    #[test]
    fn empty_input_is_a_noop() {
        let pool = WorkerPool::new(4);
        let out: Vec<usize> = pool.map(&[] as &[usize], |_, &x: &usize| x).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn window_seed_is_stable_and_spread() {
        // Pinned values: the seed-splitting scheme is part of the
        // reproducibility contract (changing it changes training curves).
        assert_eq!(window_seed(1, 0, 0), window_seed(1, 0, 0));
        assert_ne!(window_seed(1, 0, 0), window_seed(1, 0, 1));
        assert_ne!(window_seed(1, 0, 0), window_seed(1, 1, 0));
        assert_ne!(window_seed(1, 0, 0), window_seed(2, 0, 0));
        // Neighboring indices must not produce correlated low bits.
        let a = window_seed(7, 3, 10);
        let b = window_seed(7, 3, 11);
        assert_ne!(a & 0xFFFF, b & 0xFFFF);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..8).collect();
        let _ = pool.map(&items, |_, &x| x).unwrap();
        drop(pool); // must not hang
    }

    #[test]
    fn pool_load_counters_return_to_zero_after_map() {
        for workers in [1, 4] {
            let pool = WorkerPool::new(workers);
            let items: Vec<usize> = (0..24).collect();
            let _ = pool.map(&items, |_, &x| x + 1).unwrap();
            // `map` blocks until every job has reported, and each job
            // decrements before reporting, so the pool is quiescent here.
            assert_eq!(pool.gauges.queued.load(Ordering::Relaxed), 0);
            assert_eq!(pool.gauges.busy.load(Ordering::Relaxed), 0);
            // The global gauges exist (values race with other tests'
            // pools, so only registration is asserted).
            let snap = metrics::global().snapshot();
            assert!(snap.gauge("exec.queue_depth").is_some());
            assert!(snap.gauge("exec.worker_utilization").is_some());
        }
    }

    /// The timeline enable flag is process-global, so the two tests that
    /// flip it serialize against each other.
    static TIMELINE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn map_records_queue_wait_and_job_run_spans_when_enabled() {
        let _guard = TIMELINE_LOCK.lock().unwrap();
        // Concurrent tests in this binary may add spans while capture is
        // on, but every job records exactly one queue_wait and one
        // job_run, so the counts stay paired.
        timeline::set_enabled(true);
        timeline::reset();
        let items: Vec<usize> = (0..6).collect();
        for workers in [1, 3] {
            let pool = WorkerPool::new(workers);
            let _ = pool.map(&items, |_, &x| x * 2).unwrap();
        }
        timeline::set_enabled(false);
        let counts = timeline::snapshot().span_counts();
        timeline::reset();
        let job_run = counts.get("job_run").copied().unwrap_or(0);
        let queue_wait = counts.get("queue_wait").copied().unwrap_or(0);
        assert!(job_run >= 12, "job_run spans: {counts:?}");
        assert_eq!(job_run, queue_wait, "paired spans: {counts:?}");
    }

    #[test]
    fn disabled_timeline_records_nothing_from_map() {
        let _guard = TIMELINE_LOCK.lock().unwrap();
        timeline::set_enabled(false);
        timeline::reset();
        let pool = WorkerPool::new(2);
        let items: Vec<usize> = (0..8).collect();
        let _ = pool.map(&items, |_, &x| x).unwrap();
        let counts = timeline::snapshot().span_counts();
        assert_eq!(counts.get("job_run"), None, "{counts:?}");
    }
}
