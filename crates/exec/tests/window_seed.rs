//! Contract tests for the per-window seed mixer. Every trainer derives its
//! per-window RNG from `window_seed`, so its output is part of the
//! reproducibility contract: the pinned values below must never change
//! without regenerating every committed golden run.

use adaptraj_exec::window_seed;
use std::collections::HashSet;

#[test]
fn seeds_are_pinned_to_the_splitmix64_mix() {
    // Hardcoded outputs of the current mixer. If this test fails, the
    // seeding scheme changed and all `results/GOLDEN_*.json` baselines
    // (and any published run manifests) are invalidated.
    assert_eq!(window_seed(0, 0, 0), 0xE220_A839_7B1D_CDAF);
    assert_eq!(window_seed(1, 0, 0), 0x910A_2DEC_8902_5CC1);
    assert_eq!(window_seed(1, 0, 1), 0xA784_C31D_524D_0DF7);
    assert_eq!(window_seed(1, 1, 0), 0xE99F_F867_DBF6_82C9);
    assert_eq!(window_seed(42, 7, 1234), 0xAE8E_BEE6_4FC6_F9D3);
}

#[test]
fn adjacent_epochs_and_windows_never_share_a_seed() {
    // The failure mode this guards: an epoch/window mixing bug that makes
    // (epoch e, window w+1) collide with (epoch e+1, window w) — workers
    // would then replay identical noise across adjacent work items.
    for run_seed in [0u64, 1, 99] {
        for e in 0..20u64 {
            for w in 0..20u64 {
                let here = window_seed(run_seed, e, w);
                assert_ne!(here, window_seed(run_seed, e, w + 1), "window step");
                assert_ne!(here, window_seed(run_seed, e + 1, w), "epoch step");
                assert_ne!(here, window_seed(run_seed, e + 1, w + 1), "diagonal step");
            }
        }
    }
}

#[test]
fn no_collisions_over_a_10k_grid() {
    // 100 epochs × 100 windows for one run seed: every seed distinct.
    // (Random 64-bit values would collide with probability ~3e-12; any
    // collision here means the mixer lost entropy, not bad luck.)
    let mut seen = HashSet::with_capacity(10_000);
    for e in 0..100u64 {
        for w in 0..100u64 {
            assert!(
                seen.insert(window_seed(99, e, w)),
                "collision at epoch {e}, window {w}"
            );
        }
    }
    assert_eq!(seen.len(), 10_000);
}

#[test]
fn run_seeds_decorrelate_the_grid() {
    // The same (epoch, window) cell under different run seeds must not
    // collide either — two runs differing only in seed share no windows.
    let mut seen = HashSet::new();
    for run_seed in 0..10u64 {
        for e in 0..10u64 {
            for w in 0..100u64 {
                assert!(
                    seen.insert(window_seed(run_seed, e, w)),
                    "collision at run {run_seed}, epoch {e}, window {w}"
                );
            }
        }
    }
    assert_eq!(seen.len(), 10_000);
}
