//! The `adaptraj` command-line tool: synthesize datasets, inspect domain
//! statistics, train/evaluate experiment cells, and render predictions.
//!
//! ```sh
//! cargo run --release --bin adaptraj -- help
//! cargo run --release --bin adaptraj -- run --backbone pecnet --method adaptraj \
//!     --sources eth_ucy,l_cas,syi --target sdd
//! ```

use adaptraj::bench::load::{run_load, LoadConfig};
use adaptraj::bench::perf::{run_perf, PerfConfig};
use adaptraj::check::{compare, load_baselines, run_all_goldens, write_doc};
use adaptraj::cli::{parse, Command, USAGE};
use adaptraj::data::dataset::{synthesize_all, synthesize_domain, SynthesisConfig};
use adaptraj::data::domain::DomainId;
use adaptraj::data::io::write_csv;
use adaptraj::data::stats::table_one;
use adaptraj::doctor::{run_doctor, DoctorArgs};
use adaptraj::eval::viz::{render_window, VizOptions};
use adaptraj::eval::{run_cell, CellSpec, RunnerConfig, TextTable};
use adaptraj::models::predictor::TrainReport;
use adaptraj::models::{BackboneConfig, PecNet, Predictor, TrainerConfig, Vanilla};
use adaptraj::obs::serve::TelemetryServer;
use adaptraj::obs::{health, profile, timeline};
use adaptraj::obs::{EvalSummary, JsonlSink, RunTelemetry, StderrSink};
use adaptraj::tensor::serialize::{load_params_from_file, save_params_to_file};
use adaptraj::tensor::Rng;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match parse(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run(cmd) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `--update-golden` overwrites committed baselines, so it refuses to run
/// on a dirty tree: an accidental rewrite mixed into unrelated edits would
/// launder real drift into the baseline. `ADAPTRAJ_UPDATE_GOLDEN_ALLOW_DIRTY=1`
/// overrides (needed once, to bootstrap the first baselines). If `git` is
/// unavailable the update proceeds — the gate is advisory, not load-bearing.
fn ensure_clean_tree_for_golden_update() -> Result<(), Box<dyn std::error::Error>> {
    if std::env::var_os("ADAPTRAJ_UPDATE_GOLDEN_ALLOW_DIRTY").is_some_and(|v| v == "1") {
        eprintln!("warning: updating golden baselines with a dirty working tree (override set)");
        return Ok(());
    }
    let Ok(out) = std::process::Command::new("git")
        .args(["status", "--porcelain"])
        .output()
    else {
        return Ok(());
    };
    if out.status.success() && !out.stdout.is_empty() {
        return Err(
            "refusing --update-golden: the working tree has uncommitted changes \
             (commit or stash them first, or set ADAPTRAJ_UPDATE_GOLDEN_ALLOW_DIRTY=1)"
                .into(),
        );
    }
    Ok(())
}

/// Binds the live telemetry endpoint when `--telemetry-addr` was given.
/// The returned server keeps serving until dropped.
fn start_telemetry(
    addr: &Option<String>,
) -> Result<Option<TelemetryServer>, Box<dyn std::error::Error>> {
    let Some(addr) = addr else { return Ok(None) };
    let server =
        TelemetryServer::start(addr).map_err(|e| format!("--telemetry-addr {addr}: {e}"))?;
    println!(
        "telemetry endpoint on http://{} (GET /metrics /healthz /profile)",
        server.local_addr()
    );
    Ok(Some(server))
}

/// Writes the flight-recorder capture: Chrome trace JSON at `path` plus
/// profiler-derived folded stacks at `path.folded`.
fn write_trace(path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let snap = timeline::snapshot();
    std::fs::write(path, snap.to_chrome_trace())?;
    let folded_path = format!("{path}.folded");
    std::fs::write(&folded_path, timeline::folded_stacks(&profile::snapshot()))?;
    println!(
        "flight-recorder trace written to {path} ({} spans across {} lanes; \
         folded stacks in {folded_path})",
        snap.len(),
        snap.lanes.len()
    );
    Ok(())
}

fn run(cmd: Command) -> Result<(), Box<dyn std::error::Error>> {
    // Process-global kernel configuration: ADAPTRAJ_KERNEL /
    // ADAPTRAJ_FORCE_SCALAR resolve lazily inside the tensor crate; the
    // intra-op GEMM splitter needs an explicit install (the hook lives in
    // adaptraj-exec, which tensor cannot depend on).
    let intra_op_lanes = adaptraj::exec::intra_op::install_from_env();
    if intra_op_lanes > 1 {
        println!("intra-op GEMM splitting enabled: {intra_op_lanes} lanes");
    }
    match cmd {
        Command::Help => {
            println!("{USAGE}");
        }
        Command::Synthesize {
            domain,
            scenes,
            out,
        } => {
            let cfg = SynthesisConfig {
                scenes,
                ..SynthesisConfig::default()
            };
            let ds = synthesize_domain(domain, &cfg);
            println!(
                "{}: train {} / val {} / test {} windows",
                domain.name(),
                ds.train.len(),
                ds.val.len(),
                ds.test.len()
            );
            if let Some(path) = out {
                let mut f = std::fs::File::create(&path)?;
                write_csv(&ds.train, &mut f)?;
                println!("training split exported to {path}");
            }
        }
        Command::Stats { scenes } => {
            let cfg = SynthesisConfig {
                scenes,
                ..SynthesisConfig::default()
            };
            let mut table =
                TextTable::new(&["Dataset", "#seq", "num", "v(x)", "v(y)", "a(x)", "a(y)"]);
            for d in DomainId::ALL {
                let ds = synthesize_domain(d, &cfg);
                let windows: Vec<_> = ds.all_windows().cloned().collect();
                let s = table_one(&windows);
                table.push_row(vec![
                    d.name().into(),
                    s.sequences.to_string(),
                    s.num.to_string(),
                    s.vx.to_string(),
                    s.vy.to_string(),
                    s.ax.to_string(),
                    s.ay.to_string(),
                ]);
            }
            println!("{table}");
        }
        Command::Run {
            backbone,
            method,
            sources,
            target,
            epochs,
            workers,
            ckpt,
            seed,
            log_level,
            metrics_out,
            manifest,
            profile_out,
            trace_out,
            telemetry_addr,
            health_out,
            health_policy,
            health_dump,
        } => {
            if let Some(level) = log_level {
                adaptraj::obs::set_max_level(level);
                adaptraj::obs::add_sink(Arc::new(StderrSink));
            }
            // Held for the duration of the arm; dropping it stops the
            // listener thread.
            let _telemetry_server = start_telemetry(&telemetry_addr)?;
            let health_armed =
                health_out.is_some() || health_policy.is_some() || health_dump.is_some();
            // The timeline's folded-stacks export derives from the phase
            // profiler, so --trace-out implies profiling too; incident
            // phase attribution needs it as well, so arming the health
            // observatory arms the profiler.
            if profile_out.is_some() || trace_out.is_some() || health_armed {
                profile::reset();
                profile::set_enabled(true);
            }
            if health_armed {
                health::reset();
                health::set_enabled(true);
                health::set_policy(health_policy.unwrap_or_default());
            }
            if trace_out.is_some() {
                timeline::reset();
                timeline::set_enabled(true);
            }
            let metrics_sink = match &metrics_out {
                Some(path) => {
                    let sink = Arc::new(JsonlSink::create(path)?);
                    adaptraj::obs::add_sink(sink.clone());
                    Some(sink)
                }
                None => None,
            };

            let datasets = synthesize_all(&SynthesisConfig::default());
            let spec = CellSpec {
                backbone,
                method,
                sources: sources.clone(),
                target,
            };
            let mut cfg = RunnerConfig {
                trainer: TrainerConfig {
                    epochs,
                    workers,
                    ..TrainerConfig::default()
                },
                eval_cap: 0, // full test split
                ..RunnerConfig::default()
            };
            if let Some(s) = seed {
                cfg.trainer.seed = s;
            }

            let mut telemetry = RunTelemetry::new();
            telemetry.config("backbone", format!("{backbone:?}"));
            telemetry.config("method", format!("{method:?}"));
            telemetry.config(
                "sources",
                sources
                    .iter()
                    .map(|d| d.name())
                    .collect::<Vec<_>>()
                    .join(","),
            );
            telemetry.config("target", target.name());
            telemetry.config("epochs", epochs);
            telemetry.config("workers", workers);
            telemetry.config("batch_size", cfg.trainer.batch_size);
            telemetry.config("seed", cfg.trainer.seed);

            println!("training {} ...", spec.label());
            let report: TrainReport;
            let summary: EvalSummary;
            if let Some(path) = ckpt {
                // Train once here so the fitted parameters can be saved.
                let train = adaptraj::eval::runner::pooled_train(&spec, &datasets);
                let test = adaptraj::eval::runner::target_test(&spec, &datasets, 0);
                let mut predictor = adaptraj::eval::build_predictor(&spec, &cfg);
                let t0 = std::time::Instant::now();
                report = predictor.fit(&train);
                let train_time = t0.elapsed().as_secs_f64();
                let (eval, infer) =
                    adaptraj::eval::evaluate(predictor.as_ref(), &test, 3, cfg.eval_seed, workers);
                println!(
                    "ADE/FDE {eval}   train {train_time:.1}s   inference {:.2} ms/trajectory",
                    infer * 1e3
                );
                save_params_to_file(predictor.store(), &path)?;
                println!("checkpoint saved to {path}");
                summary = EvalSummary {
                    ade: eval.ade as f64,
                    fde: eval.fde as f64,
                    infer_time_s: infer,
                    num_windows: test.len() as u64,
                };
            } else {
                let num_windows =
                    adaptraj::eval::runner::target_test(&spec, &datasets, cfg.eval_cap).len();
                let res = run_cell(&spec, &datasets, &cfg);
                println!(
                    "ADE/FDE {}   train {:.1}s   inference {:.2} ms/trajectory",
                    res.eval,
                    res.train_time_s,
                    res.infer_time_s * 1e3
                );
                summary = EvalSummary {
                    ade: res.eval.ade as f64,
                    fde: res.eval.fde as f64,
                    infer_time_s: res.infer_time_s,
                    num_windows: num_windows as u64,
                };
                report = res.report;
            }

            for rec in report.epochs {
                telemetry.push_epoch(rec);
            }
            for p in report.phases {
                telemetry.push_phase(&p.phase, p.duration_s);
            }
            telemetry.eval = Some(summary);

            if let Some(path) = manifest {
                telemetry.write_to_file(std::path::Path::new(&path))?;
                println!("run manifest written to {path}");
            }
            if let Some(path) = trace_out {
                timeline::set_enabled(false);
                write_trace(&path)?;
            }
            if let Some(path) = profile_out {
                profile::set_enabled(false);
                let snap = profile::snapshot();
                std::fs::write(&path, snap.to_json())?;
                println!("op-level profile written to {path}");
                print!("{}", snap.render_table());
            }
            if let Some(sink) = metrics_sink {
                // Append the final metric snapshots after the trace events.
                for line in adaptraj::obs::global().dump_jsonl() {
                    sink.write_raw_line(&line);
                }
            }
            if let Some(path) = &health_out {
                health::write_jsonl(std::path::Path::new(path))?;
                println!(
                    "health stream written to {path} ({} record(s), {} incident(s))",
                    health::records().len(),
                    health::incident_count()
                );
            }
            adaptraj::obs::flush_sinks();
            if health_armed && health::halt_requested() {
                let dir = health_dump.unwrap_or_else(|| "health_dump".into());
                health::write_bundle(std::path::Path::new(&dir), Some(&telemetry.to_json()), 200)?;
                return Err(format!(
                    "training halted by health tripwire (policy halt-and-dump); \
                     diagnostic bundle written to {dir}"
                )
                .into());
            }
        }
        Command::Bench {
            out,
            epochs,
            scenes,
            eval_samples,
            workers,
            batch_size,
            seed,
            load,
            load_clients,
            load_requests,
            profile_out,
            trace_out,
            telemetry_addr,
        } => {
            let cfg = PerfConfig {
                epochs,
                scenes,
                eval_samples,
                workers,
                batch_size: batch_size.unwrap_or(PerfConfig::default().batch_size),
                seed: seed.unwrap_or(PerfConfig::default().seed),
            };
            println!(
                "bench: {} epochs, {} scenes, {} inference samples, {} workers, \
                 batch size {}, seed {} ...",
                cfg.epochs, cfg.scenes, cfg.eval_samples, cfg.workers, cfg.batch_size, cfg.seed
            );
            let _telemetry_server = start_telemetry(&telemetry_addr)?;
            // `run_perf` manages the profiler itself (reset + enable +
            // restore); only the timeline needs arming here.
            if trace_out.is_some() {
                timeline::reset();
                timeline::set_enabled(true);
            }
            let mut report = run_perf(&cfg);
            if load {
                let mut load_cfg = LoadConfig {
                    workers: cfg.workers.max(2),
                    seed: cfg.seed,
                    ..LoadConfig::default()
                };
                if let Some(clients) = load_clients {
                    load_cfg.clients = clients;
                }
                if let Some(requests) = load_requests {
                    load_cfg.requests_per_client = requests;
                }
                println!(
                    "load sweep: clients {:?}, {} requests/client, {} workers ...",
                    load_cfg.clients, load_cfg.requests_per_client, load_cfg.workers
                );
                let load_report = run_load(&load_cfg);
                print!("{}", load_report.render_text());
                report.load = Some(load_report);
            }
            print!("{}", report.render_text());
            std::fs::write(&out, report.to_json())?;
            println!("bench document written to {out}");
            if let Some(path) = trace_out {
                timeline::set_enabled(false);
                write_trace(&path)?;
            }
            if let Some(path) = profile_out {
                std::fs::write(&path, report.profile.to_json())?;
                println!("op-level profile written to {path}");
            }
        }
        Command::Serve {
            addr,
            workers,
            accept_threads,
            batch_window_us,
            queue_cap,
            deadline_ms,
            checkpoint,
            backbone,
            method,
            sources,
        } => {
            // The cell's target only selects an eval split, which serving
            // never touches; any domain outside the source set works.
            let target = DomainId::ALL
                .iter()
                .copied()
                .find(|d| !sources.contains(d))
                .unwrap_or(DomainId::Sdd);
            let spec = CellSpec {
                backbone,
                method,
                sources,
                target,
            };
            let runner = RunnerConfig::default();
            let mut predictor = adaptraj::eval::build_predictor(&spec, &runner);
            if let Some(path) = &checkpoint {
                load_params_from_file(predictor.store_mut(), path)
                    .map_err(|e| format!("checkpoint '{path}': {e:?}"))?;
                println!("loaded checkpoint {path} into {}", spec.label());
            } else {
                println!(
                    "warning: no --checkpoint; serving {} with untrained init weights",
                    spec.label()
                );
            }
            // /reload rebuilds the same cell and loads the requested
            // checkpoint into it; the spec must match the file's shapes.
            let loader_spec = spec.clone();
            let loader: adaptraj::serve::Loader = Box::new(move |path: &str| {
                let mut p = adaptraj::eval::build_predictor(&loader_spec, &RunnerConfig::default());
                load_params_from_file(p.store_mut(), path)
                    .map_err(|e| format!("checkpoint '{path}': {e:?}"))?;
                Ok(p)
            });
            let server = adaptraj::serve::PredictServer::start(
                adaptraj::serve::ServeConfig {
                    addr,
                    workers,
                    accept_threads,
                    batch_window_us,
                    queue_cap,
                    deadline_ms,
                    ..adaptraj::serve::ServeConfig::default()
                },
                predictor,
                checkpoint,
                Some(loader),
            )?;
            println!(
                "serving {} on http://{} (POST /v1/predict, GET /healthz /metrics, \
                 POST /reload /shutdown)",
                spec.label(),
                server.local_addr()
            );
            server.wait();
            println!("server stopped");
        }
        Command::Check {
            golden_dir,
            out_dir,
            metric_tol_pct,
            update_golden,
        } => {
            let golden_dir = std::path::PathBuf::from(golden_dir);
            if update_golden {
                ensure_clean_tree_for_golden_update()?;
                println!(
                    "re-running {} golden micro-runs ...",
                    adaptraj::check::GOLDEN_NAMES.len()
                );
                for doc in run_all_goldens() {
                    let path = write_doc(&golden_dir, &doc)?;
                    println!("wrote {}", path.display());
                }
                println!(
                    "golden baselines updated in {} — commit them with the change \
                     that motivated the drift",
                    golden_dir.display()
                );
                return Ok(());
            }
            let baselines = load_baselines(&golden_dir)?;
            println!("re-running {} golden micro-runs ...", baselines.len());
            let candidates = run_all_goldens();
            if let Some(dir) = out_dir {
                let dir = std::path::PathBuf::from(dir);
                for doc in &candidates {
                    let path = write_doc(&dir, doc)?;
                    println!("candidate written to {}", path.display());
                }
            }
            let cmp = compare(&baselines, &candidates, metric_tol_pct);
            print!("{}", cmp.render_text());
            if !cmp.ok() {
                return Err(format!(
                    "golden drift: {} divergence(s), {} missing run(s) — if the change \
                     is intentional, regenerate with `adaptraj check --update-golden`",
                    cmp.diffs.len(),
                    cmp.missing.len()
                )
                .into());
            }
        }
        Command::Doctor {
            manifest,
            health,
            bench_baseline,
            bench_candidate,
            golden_dir,
            golden_candidate,
            json,
        } => {
            let diag = run_doctor(&DoctorArgs {
                manifest,
                health,
                bench_baseline,
                bench_candidate,
                golden_dir,
                golden_candidate,
            })?;
            if json {
                println!("{}", diag.to_json());
            } else {
                print!("{}", diag.render_text());
            }
            if diag.fatal() {
                return Err("doctor: run is UNHEALTHY (see findings above)".into());
            }
        }
        Command::Visualize { target, out, count } => {
            let ds = synthesize_domain(target, &SynthesisConfig::default());
            let mut model = Vanilla::new(
                TrainerConfig {
                    epochs: 10,
                    max_train_windows: 200,
                    ..TrainerConfig::default()
                },
                |s, r| PecNet::new(s, r, BackboneConfig::default()),
            );
            println!("training a quick {} on {} ...", model.name(), target.name());
            model.fit(&ds.train);
            std::fs::create_dir_all(&out)?;
            let mut rng = Rng::seed_from(7);
            for (i, w) in ds
                .test
                .iter()
                .filter(|w| !w.neighbors.is_empty())
                .take(count)
                .enumerate()
            {
                let samples = model.predict_k(w, 3, &mut rng);
                let svg = render_window(w, &samples, &VizOptions::default());
                let path = format!("{out}/window_{i}.svg");
                std::fs::write(&path, svg)?;
                println!("rendered {path}");
            }
        }
    }
    Ok(())
}
