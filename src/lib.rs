//! # adaptraj
//!
//! Facade crate for the AdapTraj (ICDE 2024) reproduction. Re-exports every
//! workspace crate under one roof so examples and downstream users can write
//! `use adaptraj::core::AdapTraj;` etc. See the individual crates for the
//! full documentation:
//!
//! * [`tensor`] — autodiff + NN substrate
//! * [`sim`] — social-force crowd simulator
//! * [`data`] — domains, dataset synthesis, preprocessing
//! * [`models`] — backbones (PECNet, LBEBM) and baselines (Counter, CausalMotion)
//! * [`core`] — the AdapTraj framework itself
//! * [`eval`] — metrics and experiment orchestration
//! * [`bench`] — perf workloads, bench-document comparison, table binaries
//! * [`exec`] — the data-parallel worker-pool executor behind `--workers N`
//! * [`check`] — gradient verification, property harness, golden regression
//! * [`serve`] — HTTP/JSON inference service with micro-batched execution

pub mod cli;
pub mod doctor;

pub use adaptraj_bench as bench;
pub use adaptraj_check as check;
pub use adaptraj_core as core;
pub use adaptraj_data as data;
pub use adaptraj_eval as eval;
pub use adaptraj_exec as exec;
pub use adaptraj_models as models;
pub use adaptraj_obs as obs;
pub use adaptraj_serve as serve;
pub use adaptraj_sim as sim;
pub use adaptraj_tensor as tensor;
