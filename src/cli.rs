//! Argument parsing for the `adaptraj` command-line tool.
//!
//! Hand-rolled (no external parser dependency): subcommand + `--key value`
//! flags. See [`Command`] for the surface.

use adaptraj_data::domain::DomainId;
use adaptraj_eval::{BackboneKind, MethodKind};
use adaptraj_obs::health::Policy;
use adaptraj_obs::Level;
use std::collections::HashMap;

/// Parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `synthesize --domain <d> [--scenes N] [--out FILE]` — generate a
    /// domain dataset and export its training split as CSV.
    Synthesize {
        domain: DomainId,
        scenes: usize,
        out: Option<String>,
    },
    /// `stats [--scenes N]` — print Table I-style statistics for all
    /// domains.
    Stats { scenes: usize },
    /// `run --backbone <b> --method <m> --sources a,b,c --target <d>
    ///  [--epochs N] [--workers N] [--ckpt FILE] [--seed S] [--log-level L]
    ///  [--metrics-out FILE.jsonl] [--manifest FILE.json]` — train one
    /// experiment cell and report ADE/FDE (optionally saving a checkpoint,
    /// emitting trace/metrics JSONL, and writing a run manifest).
    Run {
        backbone: BackboneKind,
        method: MethodKind,
        sources: Vec<DomainId>,
        target: DomainId,
        epochs: usize,
        workers: usize,
        ckpt: Option<String>,
        seed: Option<u64>,
        log_level: Option<Level>,
        metrics_out: Option<String>,
        manifest: Option<String>,
        profile_out: Option<String>,
        trace_out: Option<String>,
        telemetry_addr: Option<String>,
        health_out: Option<String>,
        health_policy: Option<Policy>,
        health_dump: Option<String>,
    },
    /// `bench [--out FILE.json] [--epochs N] [--scenes N]
    ///  [--eval-samples N] [--workers N] [--batch-size N] [--seed S]
    ///  [--load] [--load-clients a,b,c] [--load-requests N]
    ///  [--profile-out FILE.json] [--trace-out FILE.json]
    ///  [--telemetry-addr HOST:PORT]` — run the fixed-seed perf workloads
    /// under the op-level profiler and write an `adaptraj-bench/v1`
    /// document (see EXPERIMENTS.md). `--load` adds the closed-loop
    /// serving workload (in-process `adaptraj-serve`, concurrent-client
    /// qps sweep).
    Bench {
        out: String,
        epochs: usize,
        scenes: usize,
        eval_samples: usize,
        workers: usize,
        /// None defers to `PerfConfig::default()` (the trainer default).
        batch_size: Option<usize>,
        seed: Option<u64>,
        load: bool,
        load_clients: Option<Vec<usize>>,
        load_requests: Option<usize>,
        profile_out: Option<String>,
        trace_out: Option<String>,
        telemetry_addr: Option<String>,
    },
    /// `serve --checkpoint FILE.atps [--addr HOST:PORT] [--workers N]
    ///  [--accept-threads N] [--batch-window-us N] [--queue-cap N]
    ///  [--deadline-ms N] [--backbone B] [--method M] [--sources a,b,c]`
    /// — run the HTTP/JSON inference service (adaptraj-serve) for the
    /// given model spec, loading parameters from the checkpoint.
    Serve {
        addr: String,
        workers: usize,
        accept_threads: usize,
        batch_window_us: u64,
        queue_cap: usize,
        deadline_ms: u64,
        checkpoint: Option<String>,
        backbone: BackboneKind,
        method: MethodKind,
        sources: Vec<DomainId>,
    },
    /// `visualize --target <d> [--out DIR] [--count N]` — train a quick
    /// model and render SVG predictions.
    Visualize {
        target: DomainId,
        out: String,
        count: usize,
    },
    /// `check [--golden-dir DIR] [--out-dir DIR] [--metric-tol-pct N]
    ///  [--update-golden]` — re-run the fixed-seed golden micro-runs and
    /// gate them against the committed `results/GOLDEN_*.json` baselines
    /// (bit-exact losses, percentage-tolerance ADE/FDE). With
    /// `--update-golden`, rewrite the baselines instead (requires a clean
    /// working tree).
    Check {
        golden_dir: String,
        out_dir: Option<String>,
        metric_tol_pct: f64,
        update_golden: bool,
    },
    /// `doctor [--manifest FILE.json] [--health FILE.jsonl]
    ///  [--bench-baseline FILE --bench-candidate FILE]
    ///  [--golden-dir DIR --golden-candidate DIR] [--json]` — diagnose a
    /// finished run from its observability artifacts: first unhealthy
    /// op, domain-conflict ranking, loss plateau/divergence, and
    /// optional golden/bench regression summaries. Exits nonzero on any
    /// fatal finding.
    Doctor {
        manifest: Option<String>,
        health: Option<String>,
        bench_baseline: Option<String>,
        bench_candidate: Option<String>,
        golden_dir: Option<String>,
        golden_candidate: Option<String>,
        json: bool,
    },
    /// `help`
    Help,
}

/// Parse error with a user-facing message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

fn err(msg: impl Into<String>) -> ParseError {
    ParseError(msg.into())
}

/// Parses a domain tag (`eth_ucy | l_cas | syi | sdd`, case-insensitive).
pub fn parse_domain(tag: &str) -> Result<DomainId, ParseError> {
    match tag.to_ascii_lowercase().as_str() {
        "eth_ucy" | "ethucy" | "eth&ucy" => Ok(DomainId::EthUcy),
        "l_cas" | "lcas" | "l-cas" => Ok(DomainId::LCas),
        "syi" => Ok(DomainId::Syi),
        "sdd" => Ok(DomainId::Sdd),
        other => Err(err(format!(
            "unknown domain '{other}' (expected eth_ucy | l_cas | syi | sdd)"
        ))),
    }
}

fn parse_backbone(tag: &str) -> Result<BackboneKind, ParseError> {
    match tag.to_ascii_lowercase().as_str() {
        "pecnet" => Ok(BackboneKind::PecNet),
        "lbebm" => Ok(BackboneKind::Lbebm),
        other => Err(err(format!(
            "unknown backbone '{other}' (expected pecnet | lbebm)"
        ))),
    }
}

fn parse_method(tag: &str) -> Result<MethodKind, ParseError> {
    match tag.to_ascii_lowercase().as_str() {
        "vanilla" => Ok(MethodKind::Vanilla),
        "counter" => Ok(MethodKind::Counter),
        "causalmotion" | "causal_motion" => Ok(MethodKind::CausalMotion),
        "adaptraj" => Ok(MethodKind::AdapTraj),
        other => Err(err(format!(
            "unknown method '{other}' (expected vanilla | counter | causalmotion | adaptraj)"
        ))),
    }
}

/// Splits `--key value` pairs; rejects unknown or duplicated keys.
fn parse_flags<'a>(
    args: &'a [String],
    allowed: &[&str],
) -> Result<HashMap<&'a str, &'a str>, ParseError> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| err(format!("expected --flag, got '{}'", args[i])))?;
        if !allowed.contains(&key) {
            return Err(err(format!(
                "unknown flag --{key} (allowed: {})",
                allowed
                    .iter()
                    .map(|a| format!("--{a}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )));
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| err(format!("--{key} needs a value")))?;
        if flags.insert(key, value.as_str()).is_some() {
            return Err(err(format!("--{key} given twice")));
        }
        i += 2;
    }
    Ok(flags)
}

fn parse_usize(
    flags: &HashMap<&str, &str>,
    key: &str,
    default: usize,
) -> Result<usize, ParseError> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| err(format!("--{key} expects an integer, got '{v}'"))),
    }
}

fn parse_seed(flags: &HashMap<&str, &str>) -> Result<Option<u64>, ParseError> {
    match flags.get("seed") {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| err(format!("--seed expects an unsigned integer, got '{v}'"))),
    }
}

fn parse_f64(flags: &HashMap<&str, &str>, key: &str, default: f64) -> Result<f64, ParseError> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| err(format!("--{key} expects a number, got '{v}'"))),
    }
}

/// Removes every occurrence of a valueless `--flag` from `args`, returning
/// whether it was present. `parse_flags` only understands `--key value`
/// pairs, so boolean switches are peeled off before it runs.
fn take_switch(args: &mut Vec<String>, name: &str) -> Result<bool, ParseError> {
    let flag = format!("--{name}");
    let before = args.len();
    args.retain(|a| *a != flag);
    match before - args.len() {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(err(format!("--{name} given twice"))),
    }
}

fn parse_log_level(flags: &HashMap<&str, &str>) -> Result<Option<Level>, ParseError> {
    match flags.get("log-level") {
        None => Ok(None),
        Some(v) => Level::parse(v).map(Some).ok_or_else(|| {
            err(format!(
                "unknown log level '{v}' (expected error | warn | info | debug | trace)"
            ))
        }),
    }
}

/// Parses the full argument list (without the program name).
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let Some((sub, rest)) = args.split_first() else {
        return Ok(Command::Help);
    };
    match sub.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "synthesize" => {
            let flags = parse_flags(rest, &["domain", "scenes", "out"])?;
            let domain = parse_domain(
                flags
                    .get("domain")
                    .ok_or_else(|| err("--domain required"))?,
            )?;
            Ok(Command::Synthesize {
                domain,
                scenes: parse_usize(&flags, "scenes", 24)?,
                out: flags.get("out").map(|s| s.to_string()),
            })
        }
        "stats" => {
            let flags = parse_flags(rest, &["scenes"])?;
            Ok(Command::Stats {
                scenes: parse_usize(&flags, "scenes", 12)?,
            })
        }
        "run" => {
            let flags = parse_flags(
                rest,
                &[
                    "backbone",
                    "method",
                    "sources",
                    "target",
                    "epochs",
                    "workers",
                    "ckpt",
                    "seed",
                    "log-level",
                    "metrics-out",
                    "manifest",
                    "profile-out",
                    "trace-out",
                    "telemetry-addr",
                    "health-out",
                    "health-policy",
                    "health-dump",
                ],
            )?;
            let backbone = parse_backbone(
                flags
                    .get("backbone")
                    .ok_or_else(|| err("--backbone required"))?,
            )?;
            let method = parse_method(
                flags
                    .get("method")
                    .ok_or_else(|| err("--method required"))?,
            )?;
            let sources = flags
                .get("sources")
                .ok_or_else(|| err("--sources required (comma-separated)"))?
                .split(',')
                .map(parse_domain)
                .collect::<Result<Vec<_>, _>>()?;
            if sources.is_empty() {
                return Err(err("--sources must name at least one domain"));
            }
            for (i, d) in sources.iter().enumerate() {
                if sources[..i].contains(d) {
                    return Err(err(format!(
                        "--sources lists '{}' more than once; each source domain may \
                         appear only once",
                        d.name()
                    )));
                }
            }
            let target = parse_domain(
                flags
                    .get("target")
                    .ok_or_else(|| err("--target required"))?,
            )?;
            Ok(Command::Run {
                backbone,
                method,
                sources,
                target,
                epochs: parse_usize(&flags, "epochs", 20)?,
                workers: parse_usize(&flags, "workers", 1)?,
                ckpt: flags.get("ckpt").map(|s| s.to_string()),
                seed: parse_seed(&flags)?,
                log_level: parse_log_level(&flags)?,
                metrics_out: flags.get("metrics-out").map(|s| s.to_string()),
                manifest: flags.get("manifest").map(|s| s.to_string()),
                profile_out: flags.get("profile-out").map(|s| s.to_string()),
                trace_out: flags.get("trace-out").map(|s| s.to_string()),
                telemetry_addr: flags.get("telemetry-addr").map(|s| s.to_string()),
                health_out: flags.get("health-out").map(|s| s.to_string()),
                health_policy: flags
                    .get("health-policy")
                    .map(|v| Policy::parse(v).map_err(err))
                    .transpose()?,
                health_dump: flags.get("health-dump").map(|s| s.to_string()),
            })
        }
        "bench" => {
            let mut rest = rest.to_vec();
            let load = take_switch(&mut rest, "load")?;
            let flags = parse_flags(
                &rest,
                &[
                    "out",
                    "epochs",
                    "scenes",
                    "eval-samples",
                    "eval-windows",
                    "workers",
                    "batch-size",
                    "seed",
                    "load-clients",
                    "load-requests",
                    "profile-out",
                    "trace-out",
                    "telemetry-addr",
                ],
            )?;
            if flags.contains_key("eval-samples") && flags.contains_key("eval-windows") {
                return Err(err(
                    "--eval-samples and --eval-windows are the same knob; give only one",
                ));
            }
            // `--eval-windows` is the legacy spelling; the latency loop
            // samples windows with repetition, so "samples" is the honest
            // name and gets the raised default (p99/p999 on 120 samples
            // were single order statistics — see EXPERIMENTS.md).
            let eval_samples = if flags.contains_key("eval-windows") {
                parse_usize(&flags, "eval-windows", 480)?
            } else {
                parse_usize(&flags, "eval-samples", 480)?
            };
            let load_clients = flags
                .get("load-clients")
                .map(|v| {
                    v.split(',')
                        .map(|c| {
                            c.parse::<usize>().map_err(|_| {
                                err(format!("--load-clients expects integers, got '{c}'"))
                            })
                        })
                        .collect::<Result<Vec<_>, _>>()
                })
                .transpose()?;
            if let Some(clients) = &load_clients {
                if clients.is_empty() || clients.contains(&0) {
                    return Err(err("--load-clients needs positive client counts"));
                }
            }
            if !load && (load_clients.is_some() || flags.contains_key("load-requests")) {
                return Err(err("--load-clients/--load-requests require --load"));
            }
            Ok(Command::Bench {
                out: flags.get("out").unwrap_or(&"BENCH_local.json").to_string(),
                epochs: parse_usize(&flags, "epochs", 4)?,
                scenes: parse_usize(&flags, "scenes", 6)?,
                eval_samples,
                workers: parse_usize(&flags, "workers", 1)?,
                batch_size: flags
                    .get("batch-size")
                    .map(|v| {
                        v.parse()
                            .map_err(|_| err(format!("--batch-size expects an integer, got '{v}'")))
                    })
                    .transpose()?,
                seed: parse_seed(&flags)?,
                load,
                load_clients,
                load_requests: flags
                    .get("load-requests")
                    .map(|v| {
                        v.parse().map_err(|_| {
                            err(format!("--load-requests expects an integer, got '{v}'"))
                        })
                    })
                    .transpose()?,
                profile_out: flags.get("profile-out").map(|s| s.to_string()),
                trace_out: flags.get("trace-out").map(|s| s.to_string()),
                telemetry_addr: flags.get("telemetry-addr").map(|s| s.to_string()),
            })
        }
        "serve" => {
            let flags = parse_flags(
                rest,
                &[
                    "addr",
                    "workers",
                    "accept-threads",
                    "batch-window-us",
                    "queue-cap",
                    "deadline-ms",
                    "checkpoint",
                    "backbone",
                    "method",
                    "sources",
                ],
            )?;
            let backbone = parse_backbone(flags.get("backbone").unwrap_or(&"pecnet"))?;
            let method = parse_method(flags.get("method").unwrap_or(&"vanilla"))?;
            let sources = flags
                .get("sources")
                .unwrap_or(&"eth_ucy,l_cas")
                .split(',')
                .map(parse_domain)
                .collect::<Result<Vec<_>, _>>()?;
            if sources.is_empty() {
                return Err(err("--sources must name at least one domain"));
            }
            let batch_window_us: u64 = flags
                .get("batch-window-us")
                .map(|v| {
                    v.parse().map_err(|_| {
                        err(format!("--batch-window-us expects an integer, got '{v}'"))
                    })
                })
                .transpose()?
                .unwrap_or(2000);
            let deadline_ms: u64 = flags
                .get("deadline-ms")
                .map(|v| {
                    v.parse()
                        .map_err(|_| err(format!("--deadline-ms expects an integer, got '{v}'")))
                })
                .transpose()?
                .unwrap_or(2000);
            Ok(Command::Serve {
                addr: flags.get("addr").unwrap_or(&"127.0.0.1:8080").to_string(),
                workers: parse_usize(&flags, "workers", 2)?,
                accept_threads: parse_usize(&flags, "accept-threads", 2)?,
                batch_window_us,
                queue_cap: parse_usize(&flags, "queue-cap", 256)?,
                deadline_ms,
                checkpoint: flags.get("checkpoint").map(|s| s.to_string()),
                backbone,
                method,
                sources,
            })
        }
        "visualize" => {
            let flags = parse_flags(rest, &["target", "out", "count"])?;
            let target = parse_domain(
                flags
                    .get("target")
                    .ok_or_else(|| err("--target required"))?,
            )?;
            Ok(Command::Visualize {
                target,
                out: flags.get("out").unwrap_or(&"viz_out").to_string(),
                count: parse_usize(&flags, "count", 4)?,
            })
        }
        "check" => {
            let mut rest = rest.to_vec();
            let update_golden = take_switch(&mut rest, "update-golden")?;
            let flags = parse_flags(&rest, &["golden-dir", "out-dir", "metric-tol-pct"])?;
            Ok(Command::Check {
                golden_dir: flags.get("golden-dir").unwrap_or(&"results").to_string(),
                out_dir: flags.get("out-dir").map(|s| s.to_string()),
                metric_tol_pct: parse_f64(&flags, "metric-tol-pct", 0.1)?,
                update_golden,
            })
        }
        "doctor" => {
            let mut rest = rest.to_vec();
            let json = take_switch(&mut rest, "json")?;
            let flags = parse_flags(
                &rest,
                &[
                    "manifest",
                    "health",
                    "bench-baseline",
                    "bench-candidate",
                    "golden-dir",
                    "golden-candidate",
                ],
            )?;
            if !flags.contains_key("manifest") && !flags.contains_key("health") {
                return Err(err(
                    "doctor needs at least one of --manifest FILE.json / --health FILE.jsonl",
                ));
            }
            for (a, b) in [
                ("bench-baseline", "bench-candidate"),
                ("golden-dir", "golden-candidate"),
            ] {
                if flags.contains_key(a) != flags.contains_key(b) {
                    return Err(err(format!("--{a} and --{b} must be given together")));
                }
            }
            Ok(Command::Doctor {
                manifest: flags.get("manifest").map(|s| s.to_string()),
                health: flags.get("health").map(|s| s.to_string()),
                bench_baseline: flags.get("bench-baseline").map(|s| s.to_string()),
                bench_candidate: flags.get("bench-candidate").map(|s| s.to_string()),
                golden_dir: flags.get("golden-dir").map(|s| s.to_string()),
                golden_candidate: flags.get("golden-candidate").map(|s| s.to_string()),
                json,
            })
        }
        other => Err(err(format!(
            "unknown command '{other}' (try: adaptraj help)"
        ))),
    }
}

/// The `help` text.
pub const USAGE: &str = "\
adaptraj — multi-source domain generalization for trajectory prediction

USAGE:
  adaptraj synthesize --domain <d> [--scenes N] [--out FILE.csv]
  adaptraj stats [--scenes N]
  adaptraj run --backbone <pecnet|lbebm> --method <vanilla|counter|causalmotion|adaptraj>
               --sources d1,d2,... --target <d> [--epochs N] [--workers N]
               [--ckpt FILE.atps]
               [--seed S] [--log-level <error|warn|info|debug|trace>]
               [--metrics-out FILE.jsonl] [--manifest FILE.json]
               [--profile-out FILE.json] [--trace-out FILE.json]
               [--telemetry-addr HOST:PORT]
               [--health-out FILE.jsonl]
               [--health-policy <warn|skip-window|halt-and-dump>]
               [--health-dump DIR]
  adaptraj bench [--out FILE.json] [--epochs N] [--scenes N] [--eval-samples N]
                 [--workers N] [--batch-size N] [--seed S]
                 [--load] [--load-clients a,b,c] [--load-requests N]
                 [--profile-out FILE.json] [--trace-out FILE.json]
                 [--telemetry-addr HOST:PORT]
  adaptraj serve --checkpoint FILE.atps [--addr HOST:PORT] [--workers N]
                 [--accept-threads N] [--batch-window-us N] [--queue-cap N]
                 [--deadline-ms N] [--backbone B] [--method M]
                 [--sources d1,d2,...]
  adaptraj visualize --target <d> [--out DIR] [--count N]
  adaptraj check [--golden-dir DIR] [--out-dir DIR] [--metric-tol-pct N]
                 [--update-golden]
  adaptraj doctor [--manifest FILE.json] [--health FILE.jsonl]
                  [--bench-baseline FILE --bench-candidate FILE]
                  [--golden-dir DIR --golden-candidate DIR] [--json]
  adaptraj help

DOMAINS: eth_ucy | l_cas | syi | sdd

EXECUTION:
  --workers N         worker threads for the data-parallel executor
                      (adaptraj-exec); results are bit-identical for every
                      worker count, 1 runs inline (default 1)

OBSERVABILITY (run):
  --seed S            seed training RNG (recorded in the manifest)
  --log-level L       enable stderr tracing at the given level
  --metrics-out FILE  stream trace events + final metric snapshots as JSONL
  --manifest FILE     write a run-manifest JSON (per-epoch decomposed losses,
                      gradient norms, phase timings, eval summary)
  --profile-out FILE  enable the op-level profiler and write a per-op/per-phase
                      breakdown JSON (adaptraj-profile/v1)
  --trace-out FILE    enable the flight-recorder timeline and write a Chrome
                      trace-event JSON (open in Perfetto / chrome://tracing;
                      one lane per worker with queue_wait / job_run /
                      grad_reduce / phase spans) plus FILE.folded with
                      flamegraph folded stacks from the phase profiler
  --telemetry-addr A  serve live telemetry over HTTP while the command runs:
                      GET /metrics (Prometheus text, p50/p90/p99/p999),
                      /healthz, /profile, /timeline (Chrome trace JSON);
                      A is HOST:PORT (port 0 = ephemeral)
                      — both flags also apply to bench
  --health-out FILE   arm the training-health observatory and stream
                      adaptraj-health/v1 JSONL: per-op numerics tripwires
                      (NaN/Inf/exploding) plus per-epoch per-source-domain
                      gradient norms, pairwise gradient cosines, and
                      update-to-weight ratios (observation-only: results
                      stay bit-identical for every worker count)
  --health-policy P   what a tripwire does: warn (log and continue,
                      default), skip-window (drop the offending window's
                      gradient), halt-and-dump (stop training and write a
                      diagnostic bundle to --health-dump)
  --health-dump DIR   bundle directory for halt-and-dump
                      (default health_dump/)

BENCH:
  runs fixed-seed training + inference workloads (PECNet/LBEBM vanilla and
  PECNet-AdapTraj) under the profiler and writes an adaptraj-bench/v1 JSON
  with throughput, backward ns/node, latency percentiles, and op/phase
  breakdowns; gate two runs with scripts/bench.sh (bench_gate).
  --eval-samples N    timed single-sample inference passes per workload
                      (default 480; p999 is reported only when the sample
                      count supports it; --eval-windows is the legacy
                      spelling of the same knob)
  --load              also run the closed-loop serving workload: an
                      in-process adaptraj-serve instance swept over
                      --load-clients concurrent clients (default 1,2,4,8)
                      sending --load-requests requests each (default 64),
                      recording per-level qps + latency percentiles and
                      the saturation qps into the bench document

SERVE:
  serves POST /v1/predict (scene JSON in, best-of-k trajectories out),
  GET /healthz, GET /metrics (Prometheus), POST /reload (hot checkpoint
  swap), POST /shutdown. Requests are micro-batched: the batcher waits up
  to --batch-window-us for concurrent requests and coalesces them into
  one WindowBatch pass per <= 8 windows on --workers threads. Responses
  are bit-identical to offline predict_k for the same scene + checkpoint
  + seed. A full admission queue (--queue-cap) answers 503; requests
  older than --deadline-ms answer 504. --backbone/--method/--sources
  must match the spec the checkpoint was trained with.

CHECK:
  re-runs the five fixed-seed golden micro-runs (adaptraj-golden/v1) and
  compares them against the committed baselines in --golden-dir (default
  results/): per-epoch losses and decomposed components must match
  bit-for-bit; ADE/FDE within --metric-tol-pct percent (default 0.1).
  --out-dir saves the candidate documents for inspection. --update-golden
  rewrites the baselines instead of comparing; it refuses to run with a
  dirty working tree (set ADAPTRAJ_UPDATE_GOLDEN_ALLOW_DIRTY=1 to
  override, e.g. when bootstrapping the very first baselines).

DOCTOR:
  diagnoses a finished run from its artifacts: the first unhealthy op
  (earliest tripwire incident with op kind + phase path), a ranking of
  source-domain pairs by mean pairwise gradient cosine (negative values
  signal conflicting domains), loss plateau/divergence detection over
  the manifest's per-epoch losses, and optional golden-drift / bench
  regression summaries. --json prints an adaptraj-doctor/v1 document
  instead of text. Exits nonzero on any fatal finding (incidents, loss
  divergence, golden drift, bench regression).
";

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&args("help")).unwrap(), Command::Help);
        assert_eq!(parse(&args("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn synthesize_parses_with_defaults() {
        let cmd = parse(&args("synthesize --domain sdd")).unwrap();
        assert_eq!(
            cmd,
            Command::Synthesize {
                domain: DomainId::Sdd,
                scenes: 24,
                out: None
            }
        );
    }

    #[test]
    fn run_parses_full_invocation() {
        let cmd = parse(&args(
            "run --backbone lbebm --method adaptraj --sources eth_ucy,l_cas,syi \
             --target sdd --epochs 30 --workers 4 --ckpt model.atps --seed 42 \
             --log-level debug --metrics-out m.jsonl --manifest run.json \
             --profile-out prof.json --trace-out t.json \
             --telemetry-addr 127.0.0.1:9898 --health-out h.jsonl \
             --health-policy halt-and-dump --health-dump dump_dir",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                backbone: BackboneKind::Lbebm,
                method: MethodKind::AdapTraj,
                sources: vec![DomainId::EthUcy, DomainId::LCas, DomainId::Syi],
                target: DomainId::Sdd,
                epochs: 30,
                workers: 4,
                ckpt: Some("model.atps".into()),
                seed: Some(42),
                log_level: Some(Level::Debug),
                metrics_out: Some("m.jsonl".into()),
                manifest: Some("run.json".into()),
                profile_out: Some("prof.json".into()),
                trace_out: Some("t.json".into()),
                telemetry_addr: Some("127.0.0.1:9898".into()),
                health_out: Some("h.jsonl".into()),
                health_policy: Some(Policy::HaltAndDump),
                health_dump: Some("dump_dir".into()),
            }
        );
    }

    #[test]
    fn bench_defaults_and_full_invocation() {
        assert_eq!(
            parse(&args("bench")).unwrap(),
            Command::Bench {
                out: "BENCH_local.json".into(),
                epochs: 4,
                scenes: 6,
                eval_samples: 480,
                workers: 1,
                batch_size: None,
                seed: None,
                load: false,
                load_clients: None,
                load_requests: None,
                profile_out: None,
                trace_out: None,
                telemetry_addr: None,
            }
        );
        assert_eq!(
            parse(&args(
                "bench --out BENCH_1.json --epochs 2 --scenes 3 --eval-samples 50 \
                 --workers 4 --batch-size 16 --seed 9 --load --load-clients 1,4 \
                 --load-requests 32 --profile-out prof.json \
                 --trace-out t.json --telemetry-addr 0.0.0.0:0"
            ))
            .unwrap(),
            Command::Bench {
                out: "BENCH_1.json".into(),
                epochs: 2,
                scenes: 3,
                eval_samples: 50,
                workers: 4,
                batch_size: Some(16),
                seed: Some(9),
                load: true,
                load_clients: Some(vec![1, 4]),
                load_requests: Some(32),
                profile_out: Some("prof.json".into()),
                trace_out: Some("t.json".into()),
                telemetry_addr: Some("0.0.0.0:0".into()),
            }
        );
    }

    #[test]
    fn bench_eval_windows_is_a_legacy_alias() {
        // Old invocations (e.g. pre-existing CI scripts) keep working.
        let cmd = parse(&args("bench --eval-windows 20")).unwrap();
        let Command::Bench { eval_samples, .. } = cmd else {
            panic!("expected Bench, got {cmd:?}");
        };
        assert_eq!(eval_samples, 20);
        // But both spellings at once is a contradiction.
        let e = parse(&args("bench --eval-windows 20 --eval-samples 30")).unwrap_err();
        assert!(e.0.contains("same knob"), "{e}");
    }

    #[test]
    fn bench_rejects_unknown_flags_and_bad_values() {
        let e = parse(&args("bench --target sdd")).unwrap_err();
        assert!(e.0.contains("unknown flag"), "{e}");
        let e = parse(&args("bench --eval-samples few")).unwrap_err();
        assert!(e.0.contains("integer"), "{e}");
        let e = parse(&args("bench --load-clients 1,2")).unwrap_err();
        assert!(e.0.contains("require --load"), "{e}");
        let e = parse(&args("bench --load --load-clients 1,0")).unwrap_err();
        assert!(e.0.contains("positive"), "{e}");
    }

    #[test]
    fn serve_defaults_and_full_invocation() {
        assert_eq!(
            parse(&args("serve")).unwrap(),
            Command::Serve {
                addr: "127.0.0.1:8080".into(),
                workers: 2,
                accept_threads: 2,
                batch_window_us: 2000,
                queue_cap: 256,
                deadline_ms: 2000,
                checkpoint: None,
                backbone: BackboneKind::PecNet,
                method: MethodKind::Vanilla,
                sources: vec![DomainId::EthUcy, DomainId::LCas],
            }
        );
        assert_eq!(
            parse(&args(
                "serve --addr 0.0.0.0:9000 --workers 8 --accept-threads 4 \
                 --batch-window-us 500 --queue-cap 32 --deadline-ms 250 \
                 --checkpoint m.atps --backbone lbebm --method adaptraj \
                 --sources eth_ucy,l_cas,syi"
            ))
            .unwrap(),
            Command::Serve {
                addr: "0.0.0.0:9000".into(),
                workers: 8,
                accept_threads: 4,
                batch_window_us: 500,
                queue_cap: 32,
                deadline_ms: 250,
                checkpoint: Some("m.atps".into()),
                backbone: BackboneKind::Lbebm,
                method: MethodKind::AdapTraj,
                sources: vec![DomainId::EthUcy, DomainId::LCas, DomainId::Syi],
            }
        );
    }

    #[test]
    fn serve_rejects_bad_values() {
        let e = parse(&args("serve --batch-window-us soon")).unwrap_err();
        assert!(e.0.contains("integer"), "{e}");
        let e = parse(&args("serve --backbone resnet")).unwrap_err();
        assert!(e.0.contains("unknown backbone"), "{e}");
        let e = parse(&args("serve --epochs 3")).unwrap_err();
        assert!(e.0.contains("unknown flag"), "{e}");
    }

    #[test]
    fn run_observability_flags_default_to_off() {
        let cmd = parse(&args(
            "run --backbone pecnet --method vanilla --sources sdd --target syi",
        ))
        .unwrap();
        let Command::Run {
            workers,
            seed,
            log_level,
            metrics_out,
            manifest,
            profile_out,
            trace_out,
            telemetry_addr,
            health_out,
            health_policy,
            health_dump,
            ..
        } = cmd
        else {
            panic!("expected Run, got {cmd:?}");
        };
        assert_eq!(workers, 1);
        assert_eq!(seed, None);
        assert_eq!(log_level, None);
        assert_eq!(metrics_out, None);
        assert_eq!(manifest, None);
        assert_eq!(profile_out, None);
        assert_eq!(trace_out, None);
        assert_eq!(telemetry_addr, None);
        assert_eq!(health_out, None);
        assert_eq!(health_policy, None);
        assert_eq!(health_dump, None);
    }

    #[test]
    fn run_flight_recorder_flags_parse() {
        let cmd = parse(&args(
            "run --backbone pecnet --method vanilla --sources sdd --target syi \
             --trace-out trace.json --telemetry-addr 127.0.0.1:0",
        ))
        .unwrap();
        let Command::Run {
            trace_out,
            telemetry_addr,
            ..
        } = cmd
        else {
            panic!("expected Run, got {cmd:?}");
        };
        assert_eq!(trace_out, Some("trace.json".into()));
        assert_eq!(telemetry_addr, Some("127.0.0.1:0".into()));
    }

    #[test]
    fn duplicate_source_domains_are_rejected() {
        let e = parse(&args(
            "run --backbone pecnet --method adaptraj --sources sdd,sdd --target syi",
        ))
        .unwrap_err();
        assert!(e.0.contains("more than once"), "{e}");
        assert!(e.0.contains("SDD"), "{e}");

        // Aliases of the same domain count as duplicates too.
        let e = parse(&args(
            "run --backbone pecnet --method adaptraj --sources l_cas,lcas --target syi",
        ))
        .unwrap_err();
        assert!(e.0.contains("more than once"), "{e}");
    }

    #[test]
    fn bad_seed_and_log_level_are_reported() {
        let e = parse(&args(
            "run --backbone pecnet --method vanilla --sources sdd --target syi --seed lots",
        ))
        .unwrap_err();
        assert!(e.0.contains("--seed expects"), "{e}");

        let e = parse(&args(
            "run --backbone pecnet --method vanilla --sources sdd --target syi --log-level loud",
        ))
        .unwrap_err();
        assert!(e.0.contains("unknown log level"), "{e}");
    }

    #[test]
    fn domain_aliases() {
        assert_eq!(parse_domain("L-CAS").unwrap(), DomainId::LCas);
        assert_eq!(parse_domain("ETHUCY").unwrap(), DomainId::EthUcy);
        assert!(parse_domain("mars").is_err());
    }

    #[test]
    fn missing_required_flag_is_reported() {
        let e = parse(&args("run --backbone pecnet")).unwrap_err();
        assert!(e.0.contains("--method required"), "{e}");
    }

    #[test]
    fn unknown_flag_is_rejected() {
        let e = parse(&args("stats --bogus 3")).unwrap_err();
        assert!(e.0.contains("unknown flag"), "{e}");
    }

    #[test]
    fn duplicate_flag_is_rejected() {
        let e = parse(&args("stats --scenes 3 --scenes 4")).unwrap_err();
        assert!(e.0.contains("twice"), "{e}");
    }

    #[test]
    fn bad_integer_is_reported() {
        let e = parse(&args("stats --scenes many")).unwrap_err();
        assert!(e.0.contains("integer"), "{e}");
    }

    #[test]
    fn unknown_command_is_reported() {
        let e = parse(&args("launch")).unwrap_err();
        assert!(e.0.contains("unknown command"), "{e}");
    }

    #[test]
    fn check_defaults_and_full_invocation() {
        assert_eq!(
            parse(&args("check")).unwrap(),
            Command::Check {
                golden_dir: "results".into(),
                out_dir: None,
                metric_tol_pct: 0.1,
                update_golden: false,
            }
        );
        // The boolean switch parses in any position among key-value flags.
        assert_eq!(
            parse(&args(
                "check --golden-dir base --update-golden --out-dir cand --metric-tol-pct 2.5"
            ))
            .unwrap(),
            Command::Check {
                golden_dir: "base".into(),
                out_dir: Some("cand".into()),
                metric_tol_pct: 2.5,
                update_golden: true,
            }
        );
    }

    #[test]
    fn check_rejects_bad_flags() {
        let e = parse(&args("check --metric-tol-pct lots")).unwrap_err();
        assert!(e.0.contains("expects a number"), "{e}");
        let e = parse(&args("check --update-golden --update-golden")).unwrap_err();
        assert!(e.0.contains("twice"), "{e}");
        let e = parse(&args("check --epochs 3")).unwrap_err();
        assert!(e.0.contains("unknown flag"), "{e}");
    }

    #[test]
    fn health_policy_parses_and_rejects_unknown() {
        let cmd = parse(&args(
            "run --backbone pecnet --method vanilla --sources sdd --target syi \
             --health-policy skip-window",
        ))
        .unwrap();
        let Command::Run { health_policy, .. } = cmd else {
            panic!("expected Run, got {cmd:?}");
        };
        assert_eq!(health_policy, Some(Policy::SkipWindow));

        let e = parse(&args(
            "run --backbone pecnet --method vanilla --sources sdd --target syi \
             --health-policy explode",
        ))
        .unwrap_err();
        assert!(e.0.contains("unknown health policy"), "{e}");
    }

    #[test]
    fn doctor_parses_and_validates() {
        assert_eq!(
            parse(&args("doctor --manifest run.json --health h.jsonl --json")).unwrap(),
            Command::Doctor {
                manifest: Some("run.json".into()),
                health: Some("h.jsonl".into()),
                bench_baseline: None,
                bench_candidate: None,
                golden_dir: None,
                golden_candidate: None,
                json: true,
            }
        );
        let e = parse(&args("doctor --json")).unwrap_err();
        assert!(e.0.contains("at least one"), "{e}");
        let e = parse(&args("doctor --health h.jsonl --bench-baseline b.json")).unwrap_err();
        assert!(e.0.contains("given together"), "{e}");
        let e = parse(&args("doctor --health h.jsonl --golden-candidate cand")).unwrap_err();
        assert!(e.0.contains("given together"), "{e}");
    }

    #[test]
    fn visualize_defaults() {
        let cmd = parse(&args("visualize --target syi")).unwrap();
        assert_eq!(
            cmd,
            Command::Visualize {
                target: DomainId::Syi,
                out: "viz_out".into(),
                count: 4
            }
        );
    }
}
