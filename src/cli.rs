//! Argument parsing for the `adaptraj` command-line tool.
//!
//! Hand-rolled (no external parser dependency): subcommand + `--key value`
//! flags. See [`Command`] for the surface.

use adaptraj_data::domain::DomainId;
use adaptraj_eval::{BackboneKind, MethodKind};
use std::collections::HashMap;

/// Parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `synthesize --domain <d> [--scenes N] [--out FILE]` — generate a
    /// domain dataset and export its training split as CSV.
    Synthesize {
        domain: DomainId,
        scenes: usize,
        out: Option<String>,
    },
    /// `stats [--scenes N]` — print Table I-style statistics for all
    /// domains.
    Stats { scenes: usize },
    /// `run --backbone <b> --method <m> --sources a,b,c --target <d>
    ///  [--epochs N] [--ckpt FILE]` — train one experiment cell and
    /// report ADE/FDE (optionally saving a checkpoint).
    Run {
        backbone: BackboneKind,
        method: MethodKind,
        sources: Vec<DomainId>,
        target: DomainId,
        epochs: usize,
        ckpt: Option<String>,
    },
    /// `visualize --target <d> [--out DIR] [--count N]` — train a quick
    /// model and render SVG predictions.
    Visualize {
        target: DomainId,
        out: String,
        count: usize,
    },
    /// `help`
    Help,
}

/// Parse error with a user-facing message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

fn err(msg: impl Into<String>) -> ParseError {
    ParseError(msg.into())
}

/// Parses a domain tag (`eth_ucy | l_cas | syi | sdd`, case-insensitive).
pub fn parse_domain(tag: &str) -> Result<DomainId, ParseError> {
    match tag.to_ascii_lowercase().as_str() {
        "eth_ucy" | "ethucy" | "eth&ucy" => Ok(DomainId::EthUcy),
        "l_cas" | "lcas" | "l-cas" => Ok(DomainId::LCas),
        "syi" => Ok(DomainId::Syi),
        "sdd" => Ok(DomainId::Sdd),
        other => Err(err(format!(
            "unknown domain '{other}' (expected eth_ucy | l_cas | syi | sdd)"
        ))),
    }
}

fn parse_backbone(tag: &str) -> Result<BackboneKind, ParseError> {
    match tag.to_ascii_lowercase().as_str() {
        "pecnet" => Ok(BackboneKind::PecNet),
        "lbebm" => Ok(BackboneKind::Lbebm),
        other => Err(err(format!(
            "unknown backbone '{other}' (expected pecnet | lbebm)"
        ))),
    }
}

fn parse_method(tag: &str) -> Result<MethodKind, ParseError> {
    match tag.to_ascii_lowercase().as_str() {
        "vanilla" => Ok(MethodKind::Vanilla),
        "counter" => Ok(MethodKind::Counter),
        "causalmotion" | "causal_motion" => Ok(MethodKind::CausalMotion),
        "adaptraj" => Ok(MethodKind::AdapTraj),
        other => Err(err(format!(
            "unknown method '{other}' (expected vanilla | counter | causalmotion | adaptraj)"
        ))),
    }
}

/// Splits `--key value` pairs; rejects unknown or duplicated keys.
fn parse_flags<'a>(
    args: &'a [String],
    allowed: &[&str],
) -> Result<HashMap<&'a str, &'a str>, ParseError> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| err(format!("expected --flag, got '{}'", args[i])))?;
        if !allowed.contains(&key) {
            return Err(err(format!(
                "unknown flag --{key} (allowed: {})",
                allowed
                    .iter()
                    .map(|a| format!("--{a}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )));
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| err(format!("--{key} needs a value")))?;
        if flags.insert(key, value.as_str()).is_some() {
            return Err(err(format!("--{key} given twice")));
        }
        i += 2;
    }
    Ok(flags)
}

fn parse_usize(flags: &HashMap<&str, &str>, key: &str, default: usize) -> Result<usize, ParseError> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| err(format!("--{key} expects an integer, got '{v}'"))),
    }
}

/// Parses the full argument list (without the program name).
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let Some((sub, rest)) = args.split_first() else {
        return Ok(Command::Help);
    };
    match sub.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "synthesize" => {
            let flags = parse_flags(rest, &["domain", "scenes", "out"])?;
            let domain = parse_domain(flags.get("domain").ok_or_else(|| err("--domain required"))?)?;
            Ok(Command::Synthesize {
                domain,
                scenes: parse_usize(&flags, "scenes", 24)?,
                out: flags.get("out").map(|s| s.to_string()),
            })
        }
        "stats" => {
            let flags = parse_flags(rest, &["scenes"])?;
            Ok(Command::Stats {
                scenes: parse_usize(&flags, "scenes", 12)?,
            })
        }
        "run" => {
            let flags = parse_flags(
                rest,
                &["backbone", "method", "sources", "target", "epochs", "ckpt"],
            )?;
            let backbone =
                parse_backbone(flags.get("backbone").ok_or_else(|| err("--backbone required"))?)?;
            let method = parse_method(flags.get("method").ok_or_else(|| err("--method required"))?)?;
            let sources = flags
                .get("sources")
                .ok_or_else(|| err("--sources required (comma-separated)"))?
                .split(',')
                .map(parse_domain)
                .collect::<Result<Vec<_>, _>>()?;
            if sources.is_empty() {
                return Err(err("--sources must name at least one domain"));
            }
            let target = parse_domain(flags.get("target").ok_or_else(|| err("--target required"))?)?;
            Ok(Command::Run {
                backbone,
                method,
                sources,
                target,
                epochs: parse_usize(&flags, "epochs", 20)?,
                ckpt: flags.get("ckpt").map(|s| s.to_string()),
            })
        }
        "visualize" => {
            let flags = parse_flags(rest, &["target", "out", "count"])?;
            let target = parse_domain(flags.get("target").ok_or_else(|| err("--target required"))?)?;
            Ok(Command::Visualize {
                target,
                out: flags.get("out").unwrap_or(&"viz_out").to_string(),
                count: parse_usize(&flags, "count", 4)?,
            })
        }
        other => Err(err(format!(
            "unknown command '{other}' (try: adaptraj help)"
        ))),
    }
}

/// The `help` text.
pub const USAGE: &str = "\
adaptraj — multi-source domain generalization for trajectory prediction

USAGE:
  adaptraj synthesize --domain <d> [--scenes N] [--out FILE.csv]
  adaptraj stats [--scenes N]
  adaptraj run --backbone <pecnet|lbebm> --method <vanilla|counter|causalmotion|adaptraj>
               --sources d1,d2,... --target <d> [--epochs N] [--ckpt FILE.atps]
  adaptraj visualize --target <d> [--out DIR] [--count N]
  adaptraj help

DOMAINS: eth_ucy | l_cas | syi | sdd
";

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&args("help")).unwrap(), Command::Help);
        assert_eq!(parse(&args("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn synthesize_parses_with_defaults() {
        let cmd = parse(&args("synthesize --domain sdd")).unwrap();
        assert_eq!(
            cmd,
            Command::Synthesize {
                domain: DomainId::Sdd,
                scenes: 24,
                out: None
            }
        );
    }

    #[test]
    fn run_parses_full_invocation() {
        let cmd = parse(&args(
            "run --backbone lbebm --method adaptraj --sources eth_ucy,l_cas,syi \
             --target sdd --epochs 30 --ckpt model.atps",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                backbone: BackboneKind::Lbebm,
                method: MethodKind::AdapTraj,
                sources: vec![DomainId::EthUcy, DomainId::LCas, DomainId::Syi],
                target: DomainId::Sdd,
                epochs: 30,
                ckpt: Some("model.atps".into()),
            }
        );
    }

    #[test]
    fn domain_aliases() {
        assert_eq!(parse_domain("L-CAS").unwrap(), DomainId::LCas);
        assert_eq!(parse_domain("ETHUCY").unwrap(), DomainId::EthUcy);
        assert!(parse_domain("mars").is_err());
    }

    #[test]
    fn missing_required_flag_is_reported() {
        let e = parse(&args("run --backbone pecnet")).unwrap_err();
        assert!(e.0.contains("--method required"), "{e}");
    }

    #[test]
    fn unknown_flag_is_rejected() {
        let e = parse(&args("stats --bogus 3")).unwrap_err();
        assert!(e.0.contains("unknown flag"), "{e}");
    }

    #[test]
    fn duplicate_flag_is_rejected() {
        let e = parse(&args("stats --scenes 3 --scenes 4")).unwrap_err();
        assert!(e.0.contains("twice"), "{e}");
    }

    #[test]
    fn bad_integer_is_reported() {
        let e = parse(&args("stats --scenes many")).unwrap_err();
        assert!(e.0.contains("integer"), "{e}");
    }

    #[test]
    fn unknown_command_is_reported() {
        let e = parse(&args("launch")).unwrap_err();
        assert!(e.0.contains("unknown command"), "{e}");
    }

    #[test]
    fn visualize_defaults() {
        let cmd = parse(&args("visualize --target syi")).unwrap();
        assert_eq!(
            cmd,
            Command::Visualize {
                target: DomainId::Syi,
                out: "viz_out".into(),
                count: 4
            }
        );
    }
}
