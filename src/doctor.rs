//! `adaptraj doctor` — offline diagnosis of a training run from its
//! observability artifacts.
//!
//! Ingests a run manifest (`adaptraj-run-manifest/v1`), a health stream
//! (`adaptraj-health/v1` JSONL from `--health-out`), and optionally a
//! BENCH baseline/candidate pair and a GOLDEN baseline/candidate
//! directory pair, and produces a structured [`Diagnosis`]:
//!
//! - **first unhealthy op** — the earliest numerics-tripwire incident,
//!   with the op kind and profiler phase path that produced it,
//! - **domain-conflict ranking** — source-domain pairs ordered by mean
//!   pairwise gradient cosine (most negative first: the paper's
//!   negative-transfer signal),
//! - **loss trajectory** — divergence (fatal) and plateau (warning)
//!   detection over the manifest's per-epoch losses,
//! - **regression summaries** — golden drift and bench regressions via
//!   the same comparators the CI gates use.
//!
//! The diagnosis renders as text or JSON (`adaptraj-doctor/v1`); any
//! fatal finding makes the CLI exit nonzero.

use adaptraj_obs::health::{self, HealthRecord, Incident};
use adaptraj_obs::json::{Arr, Obj, Value};
use adaptraj_obs::telemetry::MANIFEST_SCHEMA;

/// Schema tag of the `doctor --json` output document.
pub const DOCTOR_SCHEMA: &str = "adaptraj-doctor/v1";

/// How many trailing epochs the plateau detector inspects.
const PLATEAU_WINDOW: usize = 4;
/// Relative improvement below which the trailing window counts as flat.
const PLATEAU_REL_TOL: f64 = 1e-3;
/// A phase whose last loss exceeds its minimum by this factor diverged.
const DIVERGENCE_FACTOR: f64 = 5.0;

/// Severity of one diagnosis finding. Fatal findings make the doctor
/// exit nonzero; warnings and infos do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Info,
    Warning,
    Fatal,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Fatal => "fatal",
        }
    }
}

/// One diagnosis finding: a stable machine-readable code plus a
/// human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    pub severity: Severity,
    /// Stable code (`numerics-incident`, `loss-divergence`,
    /// `loss-plateau`, `domain-conflict`, `golden-drift`,
    /// `bench-regression`, ...).
    pub code: &'static str,
    pub message: String,
}

/// A source-domain pair ranked by mean pairwise gradient cosine.
#[derive(Debug, Clone, PartialEq)]
pub struct PairConflict {
    pub a: String,
    pub b: String,
    /// Mean cosine over all epochs that reported the pair.
    pub mean_cosine: f64,
    pub epochs: u64,
}

/// The full structured diagnosis.
#[derive(Debug, Clone, Default)]
pub struct Diagnosis {
    pub findings: Vec<Finding>,
    /// Earliest tripwire incident in the health stream.
    pub first_unhealthy_op: Option<Incident>,
    pub incident_count: usize,
    pub epoch_records: usize,
    /// Pairs ordered most-conflicting (lowest mean cosine) first.
    pub conflicts: Vec<PairConflict>,
    pub divergence: bool,
    pub plateau: bool,
    /// `Some(summary)` when a golden comparison ran.
    pub golden_summary: Option<String>,
    pub golden_ok: Option<bool>,
    /// `Some(summary)` when a bench comparison ran.
    pub bench_summary: Option<String>,
    pub bench_ok: Option<bool>,
}

impl Diagnosis {
    /// True when any finding is fatal — the CLI then exits nonzero.
    pub fn fatal(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Fatal)
    }

    fn push(&mut self, severity: Severity, code: &'static str, message: impl Into<String>) {
        self.findings.push(Finding {
            severity,
            code,
            message: message.into(),
        });
    }

    pub fn render_text(&self) -> String {
        let mut out = String::from("adaptraj doctor — diagnosis\n");
        out.push_str(&format!(
            "  health records: {} epoch, {} incident(s)\n",
            self.epoch_records, self.incident_count
        ));
        match &self.first_unhealthy_op {
            Some(i) => out.push_str(&format!(
                "  first unhealthy op: '{}' ({}) in phase '{}' at epoch {}, window {} \
                 [{} NaN / {} Inf of {} values, max |x| {:.3e}]\n",
                i.op,
                i.fault.as_str(),
                if i.phase.is_empty() {
                    "<none>"
                } else {
                    &i.phase
                },
                i.epoch,
                i.window,
                i.stats.nan_count,
                i.stats.inf_count,
                i.stats.len,
                i.stats.max_abs,
            )),
            None => out.push_str("  first unhealthy op: none\n"),
        }
        if self.conflicts.is_empty() {
            out.push_str("  domain conflicts: no pairwise gradient data\n");
        } else {
            out.push_str("  domain conflict ranking (mean grad cosine, most conflicting first):\n");
            for c in &self.conflicts {
                out.push_str(&format!(
                    "    {:<24} {:+.4}{}\n",
                    format!("{}__{}", c.a, c.b),
                    c.mean_cosine,
                    if c.mean_cosine < 0.0 {
                        "  <- negative transfer"
                    } else {
                        ""
                    }
                ));
            }
        }
        out.push_str(&format!(
            "  loss trajectory: {}\n",
            if self.divergence {
                "DIVERGED"
            } else if self.plateau {
                "plateaued"
            } else {
                "healthy"
            }
        ));
        if let Some(s) = &self.golden_summary {
            out.push_str(&format!("  golden: {s}\n"));
        }
        if let Some(s) = &self.bench_summary {
            out.push_str(&format!("  bench: {s}\n"));
        }
        for f in &self.findings {
            out.push_str(&format!(
                "  [{}] {}: {}\n",
                f.severity.as_str(),
                f.code,
                f.message
            ));
        }
        let fatals = self
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Fatal)
            .count();
        out.push_str(&format!(
            "verdict: {}\n",
            if fatals > 0 {
                format!("UNHEALTHY ({fatals} fatal finding(s))")
            } else {
                "HEALTHY".to_string()
            }
        ));
        out
    }

    pub fn to_json(&self) -> String {
        let mut findings = Arr::new();
        for f in &self.findings {
            findings = findings.push_raw(
                &Obj::new()
                    .str("severity", f.severity.as_str())
                    .str("code", f.code)
                    .str("message", &f.message)
                    .finish(),
            );
        }
        let mut conflicts = Arr::new();
        for c in &self.conflicts {
            conflicts = conflicts.push_raw(
                &Obj::new()
                    .str("a", &c.a)
                    .str("b", &c.b)
                    .f64("mean_cosine", c.mean_cosine)
                    .u64("epochs", c.epochs)
                    .finish(),
            );
        }
        let mut obj = Obj::new()
            .str("schema", DOCTOR_SCHEMA)
            .bool("healthy", !self.fatal())
            .u64("epoch_records", self.epoch_records as u64)
            .u64("incidents", self.incident_count as u64)
            .bool("divergence", self.divergence)
            .bool("plateau", self.plateau)
            .raw("conflicts", &conflicts.finish())
            .raw("findings", &findings.finish());
        if let Some(i) = &self.first_unhealthy_op {
            obj = obj.raw("first_unhealthy_op", &i.to_json());
        }
        if let Some(ok) = self.golden_ok {
            obj = obj.bool("golden_ok", ok);
        }
        if let Some(ok) = self.bench_ok {
            obj = obj.bool("bench_ok", ok);
        }
        obj.finish()
    }
}

// ---------------------------------------------------------------------------
// Input parsing
// ---------------------------------------------------------------------------

/// Parses an `adaptraj-health/v1` JSONL document: schema-checked header
/// line, then one record per line (unknown record types are skipped).
pub fn parse_health_jsonl(text: &str) -> Result<Vec<HealthRecord>, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or("empty health stream")?;
    let v = Value::parse(header).map_err(|e| format!("health header: {e}"))?;
    match v.get("schema").and_then(Value::as_str) {
        Some(s) if s == health::HEALTH_SCHEMA => {}
        Some(s) => {
            return Err(format!(
                "health schema '{s}', expected '{}'",
                health::HEALTH_SCHEMA
            ))
        }
        None => return Err("health header missing 'schema'".into()),
    }
    let mut records = Vec::new();
    for (i, line) in lines.enumerate() {
        let v = Value::parse(line).map_err(|e| format!("health line {}: {e}", i + 2))?;
        if let Some(r) = health::parse_record(&v) {
            records.push(r);
        }
    }
    Ok(records)
}

/// Parses and schema-checks an `adaptraj-run-manifest/v1` document.
pub fn parse_manifest(text: &str) -> Result<Value, String> {
    let v = Value::parse(text).map_err(|e| format!("manifest: {e}"))?;
    match v.get("schema").and_then(Value::as_str) {
        Some(s) if s == MANIFEST_SCHEMA => Ok(v),
        Some(s) => Err(format!(
            "manifest schema '{s}', expected '{MANIFEST_SCHEMA}'"
        )),
        None => Err("manifest missing 'schema'".into()),
    }
}

// ---------------------------------------------------------------------------
// Diagnosis
// ---------------------------------------------------------------------------

/// Per-epoch loss point pulled from the manifest.
#[derive(Debug, Clone)]
struct LossPoint {
    phase: String,
    loss: f64,
}

fn manifest_losses(manifest: &Value) -> Vec<LossPoint> {
    manifest
        .get("epochs")
        .and_then(Value::as_array)
        .map(|epochs| {
            epochs
                .iter()
                .map(|e| LossPoint {
                    phase: e
                        .get("phase")
                        .and_then(Value::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    loss: e.get("loss").and_then(Value::as_f64).unwrap_or(f64::NAN),
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Diagnoses the loss trajectory: divergence when any epoch loss is
/// non-finite or a phase's final loss blew past `DIVERGENCE_FACTOR`
/// times its own minimum; plateau when the final phase's trailing
/// window improved by less than `PLATEAU_REL_TOL` relative.
fn diagnose_losses(d: &mut Diagnosis, points: &[LossPoint]) {
    if points.is_empty() {
        return;
    }
    if let Some(p) = points.iter().find(|p| !p.loss.is_finite()) {
        d.divergence = true;
        d.push(
            Severity::Fatal,
            "loss-divergence",
            format!("non-finite epoch loss in phase '{}'", p.phase),
        );
        return;
    }
    // Per-phase blow-up check: compare each phase's last loss to the
    // minimum it reached earlier in that phase.
    let mut phases: Vec<&str> = Vec::new();
    for p in points {
        if !phases.contains(&p.phase.as_str()) {
            phases.push(&p.phase);
        }
    }
    for phase in &phases {
        let losses: Vec<f64> = points
            .iter()
            .filter(|p| p.phase == *phase)
            .map(|p| p.loss)
            .collect();
        let min = losses.iter().cloned().fold(f64::INFINITY, f64::min);
        let last = *losses.last().unwrap();
        if min > 0.0 && last > min * DIVERGENCE_FACTOR {
            d.divergence = true;
            d.push(
                Severity::Fatal,
                "loss-divergence",
                format!(
                    "phase '{phase}' loss rose to {last:.4} from a minimum of {min:.4} \
                     ({:.1}x)",
                    last / min
                ),
            );
        }
    }
    if d.divergence {
        return;
    }
    // Plateau over the final phase's trailing window (warning only, so a
    // short healthy run still exits zero).
    let final_phase = phases.last().unwrap();
    let losses: Vec<f64> = points
        .iter()
        .filter(|p| p.phase == *final_phase)
        .map(|p| p.loss)
        .collect();
    if losses.len() >= PLATEAU_WINDOW {
        let start = losses[losses.len() - PLATEAU_WINDOW];
        let end = *losses.last().unwrap();
        let rel = (start - end).abs() / start.abs().max(1e-12);
        if rel < PLATEAU_REL_TOL {
            d.plateau = true;
            d.push(
                Severity::Warning,
                "loss-plateau",
                format!(
                    "phase '{final_phase}' loss flat over the last {PLATEAU_WINDOW} \
                     epochs ({start:.6} -> {end:.6})"
                ),
            );
        }
    }
}

/// Ranks source-domain pairs by mean pairwise gradient cosine across
/// all epoch records, most conflicting (lowest) first.
fn rank_conflicts(records: &[HealthRecord]) -> Vec<PairConflict> {
    let mut pairs: Vec<(String, String, f64, u64)> = Vec::new();
    for r in records {
        let HealthRecord::Epoch(e) = r else { continue };
        for c in &e.cosines {
            if !c.cosine.is_finite() {
                continue;
            }
            match pairs.iter_mut().find(|(a, b, ..)| *a == c.a && *b == c.b) {
                Some((_, _, sum, n)) => {
                    *sum += c.cosine;
                    *n += 1;
                }
                None => pairs.push((c.a.clone(), c.b.clone(), c.cosine, 1)),
            }
        }
    }
    let mut out: Vec<PairConflict> = pairs
        .into_iter()
        .map(|(a, b, sum, n)| PairConflict {
            a,
            b,
            mean_cosine: sum / n as f64,
            epochs: n,
        })
        .collect();
    out.sort_by(|x, y| {
        x.mean_cosine
            .partial_cmp(&y.mean_cosine)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (x.a.as_str(), x.b.as_str()).cmp(&(y.a.as_str(), y.b.as_str())))
    });
    out
}

/// Builds the diagnosis from pre-parsed inputs. Pure — file ingestion
/// and the gate comparators are layered on top in [`run_doctor`].
pub fn diagnose(manifest: Option<&Value>, records: &[HealthRecord]) -> Diagnosis {
    let mut d = Diagnosis {
        epoch_records: records
            .iter()
            .filter(|r| matches!(r, HealthRecord::Epoch(_)))
            .count(),
        ..Diagnosis::default()
    };
    let incidents: Vec<&Incident> = records
        .iter()
        .filter_map(|r| match r {
            HealthRecord::Incident(i) => Some(i),
            HealthRecord::Epoch(_) => None,
        })
        .collect();
    d.incident_count = incidents.len();
    d.first_unhealthy_op = incidents.first().cloned().cloned();
    if let Some(i) = d.first_unhealthy_op.clone() {
        d.push(
            Severity::Fatal,
            "numerics-incident",
            format!(
                "{} incident(s); first: {} in op '{}' (phase '{}', epoch {}, window {})",
                d.incident_count,
                i.fault.as_str(),
                i.op,
                if i.phase.is_empty() {
                    "<none>"
                } else {
                    &i.phase
                },
                i.epoch,
                i.window
            ),
        );
    }
    d.conflicts = rank_conflicts(records);
    let conflict_findings: Vec<String> = d
        .conflicts
        .iter()
        .filter(|c| c.mean_cosine < 0.0)
        .map(|c| {
            format!(
                "sources '{}' and '{}' pull in conflicting directions \
                 (mean grad cosine {:+.4} over {} epoch(s))",
                c.a, c.b, c.mean_cosine, c.epochs
            )
        })
        .collect();
    for msg in conflict_findings {
        d.push(Severity::Warning, "domain-conflict", msg);
    }
    if let Some(m) = manifest {
        diagnose_losses(&mut d, &manifest_losses(m));
        let skipped = m
            .get("non_finite_batches_total")
            .and_then(Value::as_u64)
            .unwrap_or(0);
        if skipped > 0 {
            d.push(
                Severity::Warning,
                "non-finite-batches",
                format!("{skipped} batch(es) skipped for non-finite losses"),
            );
        }
    }
    d
}

// ---------------------------------------------------------------------------
// File-level driver
// ---------------------------------------------------------------------------

/// File paths for one doctor invocation; every input is optional but at
/// least one of `manifest`/`health` must be given.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DoctorArgs {
    pub manifest: Option<String>,
    pub health: Option<String>,
    pub bench_baseline: Option<String>,
    pub bench_candidate: Option<String>,
    pub golden_dir: Option<String>,
    pub golden_candidate: Option<String>,
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

/// Ingests the artifact files and produces the diagnosis.
pub fn run_doctor(args: &DoctorArgs) -> Result<Diagnosis, String> {
    if args.manifest.is_none() && args.health.is_none() {
        return Err("doctor needs at least one of --manifest / --health".into());
    }
    let manifest = match &args.manifest {
        Some(p) => Some(parse_manifest(&read(p)?)?),
        None => None,
    };
    let records = match &args.health {
        Some(p) => parse_health_jsonl(&read(p)?)?,
        None => Vec::new(),
    };
    let mut d = diagnose(manifest.as_ref(), &records);

    if let (Some(base), Some(cand)) = (&args.golden_dir, &args.golden_candidate) {
        use adaptraj_check::golden::{compare, load_baselines};
        let b = load_baselines(std::path::Path::new(base)).map_err(|e| format!("{base}: {e}"))?;
        let c = load_baselines(std::path::Path::new(cand)).map_err(|e| format!("{cand}: {e}"))?;
        let cmp = compare(&b, &c, 0.1);
        d.golden_ok = Some(cmp.ok());
        if cmp.ok() {
            d.golden_summary = Some(format!("OK ({} run(s) bit-identical)", cmp.compared));
        } else {
            d.golden_summary = Some(format!(
                "DRIFT ({} divergence(s), {} missing run(s))",
                cmp.diffs.len(),
                cmp.missing.len()
            ));
            d.push(
                Severity::Fatal,
                "golden-drift",
                format!(
                    "{} divergence(s) from the golden baselines in {base}",
                    cmp.diffs.len() + cmp.missing.len()
                ),
            );
        }
    }
    if let (Some(base), Some(cand)) = (&args.bench_baseline, &args.bench_candidate) {
        use adaptraj_bench::compare::{compare, parse_doc};
        let b = parse_doc(&read(base)?).map_err(|e| format!("{base}: {e}"))?;
        let c = parse_doc(&read(cand)?).map_err(|e| format!("{cand}: {e}"))?;
        let cmp = compare(&b, &c, 25.0);
        d.bench_ok = Some(cmp.ok());
        if cmp.ok() {
            d.bench_summary = Some("OK (no regression past 25%)".into());
        } else {
            d.bench_summary = Some(format!(
                "REGRESSED ({} metric(s) past 25%, {} missing workload(s))",
                cmp.regressions().len(),
                cmp.missing.len()
            ));
            d.push(
                Severity::Fatal,
                "bench-regression",
                format!(
                    "{} bench metric(s) regressed past 25% vs {base}",
                    cmp.regressions().len() + cmp.missing.len()
                ),
            );
        }
    }
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptraj_obs::health::{DomainCosine, DomainNorm, EpochHealth, FaultKind, TensorStats};

    fn epoch_rec(epoch: u64, cosine: f64) -> HealthRecord {
        HealthRecord::Epoch(EpochHealth {
            epoch,
            phase: "step1".into(),
            domains: vec![
                DomainNorm {
                    domain: "ETH&UCY".into(),
                    grad_norm: 1.0,
                },
                DomainNorm {
                    domain: "L-CAS".into(),
                    grad_norm: 2.0,
                },
            ],
            cosines: vec![DomainCosine {
                a: "ETH&UCY".into(),
                b: "L-CAS".into(),
                cosine,
            }],
            update_ratios: Vec::new(),
        })
    }

    fn incident_rec() -> HealthRecord {
        HealthRecord::Incident(Incident {
            epoch: 2,
            window: 17,
            op: "mul".into(),
            phase: "train/step1".into(),
            fault: FaultKind::Nan,
            stats: TensorStats {
                len: 128,
                nan_count: 3,
                inf_count: 0,
                max_abs: 1.5,
                mean_abs: 0.2,
            },
        })
    }

    #[test]
    fn incident_is_fatal_and_surfaces_first_unhealthy_op() {
        let d = diagnose(None, &[incident_rec(), epoch_rec(0, 0.5)]);
        assert!(d.fatal());
        let i = d.first_unhealthy_op.as_ref().unwrap();
        assert_eq!(i.op, "mul");
        assert_eq!(i.phase, "train/step1");
        assert!(d.render_text().contains("first unhealthy op: 'mul' (nan)"));
        assert!(d.to_json().contains("\"healthy\":false"));
    }

    #[test]
    fn negative_mean_cosine_ranks_first_and_warns() {
        let recs = vec![epoch_rec(0, -0.4), epoch_rec(1, -0.2), epoch_rec(2, 0.1)];
        let d = diagnose(None, &recs);
        assert!(!d.fatal());
        assert_eq!(d.conflicts.len(), 1);
        let c = &d.conflicts[0];
        assert_eq!((c.a.as_str(), c.b.as_str()), ("ETH&UCY", "L-CAS"));
        assert!((c.mean_cosine - (-0.5 / 3.0)).abs() < 1e-12);
        assert!(d
            .findings
            .iter()
            .any(|f| f.code == "domain-conflict" && f.severity == Severity::Warning));
    }

    fn manifest_with_losses(losses: &[(&str, f64)]) -> Value {
        let mut epochs = Arr::new();
        for (i, (phase, loss)) in losses.iter().enumerate() {
            epochs = epochs.push_raw(
                &Obj::new()
                    .u64("epoch", i as u64)
                    .str("phase", phase)
                    .f64("loss", *loss)
                    .finish(),
            );
        }
        let text = Obj::new()
            .str("schema", MANIFEST_SCHEMA)
            .u64("non_finite_batches_total", 0)
            .raw("epochs", &epochs.finish())
            .finish();
        parse_manifest(&text).unwrap()
    }

    #[test]
    fn divergence_is_fatal() {
        let m = manifest_with_losses(&[("train", 1.0), ("train", 0.5), ("train", 40.0)]);
        let d = diagnose(Some(&m), &[]);
        assert!(d.divergence);
        assert!(d.fatal());

        let m = manifest_with_losses(&[("train", 1.0), ("train", f64::NAN)]);
        let d = diagnose(Some(&m), &[]);
        assert!(d.divergence && d.fatal());
    }

    #[test]
    fn plateau_is_a_warning_not_fatal() {
        let m = manifest_with_losses(&[
            ("train", 1.0),
            ("train", 0.5),
            ("train", 0.5),
            ("train", 0.5),
            ("train", 0.5),
        ]);
        let d = diagnose(Some(&m), &[]);
        assert!(d.plateau);
        assert!(!d.fatal());
        assert!(d.render_text().contains("plateaued"));
    }

    #[test]
    fn healthy_run_is_healthy() {
        let m = manifest_with_losses(&[("train", 1.0), ("train", 0.8), ("train", 0.6)]);
        let d = diagnose(Some(&m), &[epoch_rec(0, 0.3)]);
        assert!(!d.fatal());
        assert!(d.render_text().contains("verdict: HEALTHY"));
        assert!(d.to_json().contains("\"healthy\":true"));
    }

    #[test]
    fn health_jsonl_round_trips_through_the_parser() {
        let recs = vec![incident_rec(), epoch_rec(0, -0.25)];
        let text = health::render_jsonl(&recs, 123);
        let back = parse_health_jsonl(&text).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn wrong_schemas_are_rejected() {
        assert!(parse_health_jsonl("{\"schema\":\"nope/v1\"}\n").is_err());
        assert!(parse_manifest("{\"schema\":\"nope/v1\"}").is_err());
        let e = run_doctor(&DoctorArgs::default()).unwrap_err();
        assert!(e.contains("at least one"));
    }
}
