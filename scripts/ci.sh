#!/usr/bin/env bash
# Offline CI gate: formatting, lints, build, and the tier-1 test suite.
# Every step works with no network access; steps whose tools are not
# installed (fmt/clippy components) are skipped with a notice rather
# than failing the run.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

step() {
    echo
    echo "=== $* ==="
}

step "cargo fmt --check"
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --all -- --check || fail=1
else
    echo "skipped: rustfmt not installed"
fi

step "cargo clippy -D warnings"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets --offline -- -D warnings || fail=1
else
    echo "skipped: clippy not installed"
fi

step "cargo build --release"
cargo build --release --offline || fail=1

step "cargo test (tier-1)"
cargo test -q --offline || fail=1

step "cargo test --workspace"
cargo test -q --workspace --offline || fail=1

step "determinism suite (workers 1 vs 4 bit-identity, batched jobs)"
# Exercises the batched execution path end to end: keyed multi-window
# jobs, batch-position-order gradient reduction, and the
# exec.windows_trained counter must all be worker-count independent.
cargo test -q --offline --test determinism || fail=1

step "gradient verification + property harness (adaptraj-check)"
# Central-difference gradient checks for all 32 tape ops, the LSTM/MLP
# layers, and every backbone's full training loss; tape invariants and
# algebraic identities through the offline shrinking generator.
cargo test -q --offline -p adaptraj-check || fail=1

step "kernel equivalence suite (scalar vs SIMD bit-identity, FMA FD evidence)"
# Property-tests that the default AVX2 microkernels produce bitwise
# identical results to the scalar fallback on random shapes (including
# k=0, m=0, single-row, and zero-dense operands), that equivalence holds
# under forced intra-op row splitting, and that the opt-in FMA variant
# still passes finite-difference gradient checks on full training losses.
cargo test -q --offline -p adaptraj-check --test kernel_equivalence || fail=1
cargo test -q --offline -p adaptraj-check --test kernel_fma || fail=1

step "forced-scalar pass (ADAPTRAJ_FORCE_SCALAR=1 tier-1 + golden gate)"
# The scalar fallback is a first-class dispatch path, not dead code: the
# tier-1 suite and the golden micro-runs must pass with SIMD disabled,
# proving the committed goldens do not depend on the host's ISA.
ADAPTRAJ_FORCE_SCALAR=1 cargo test -q --offline || fail=1
mkdir -p target/golden-scalar-ci
ADAPTRAJ_FORCE_SCALAR=1 cargo run --release --offline --bin adaptraj -- \
    check --golden-dir results --out-dir target/golden-scalar-ci || fail=1

step "golden regression gate (fixed-seed micro-runs)"
# Re-runs the five pinned micro-runs and compares against the committed
# results/GOLDEN_*.json: losses bit-for-bit, ADE/FDE within 0.1%. Any
# drift fails CI; intentional changes regenerate with
#   cargo run --release -- check --update-golden
mkdir -p target/golden-ci
cargo run --release --offline --bin adaptraj -- \
    check --golden-dir results --out-dir target/golden-ci || fail=1
# The standalone comparator must reach the same verdict from the files
# the CLI just wrote (exercises the parse path end to end).
cargo run --release --offline -p adaptraj-check --bin golden_gate -- \
    --baseline-dir results --candidate-dir target/golden-ci || fail=1

step "bench smoke + gate (check mode)"
# Tiny fixed-seed bench run on 2 workers, then schema-validate and diff
# against the committed baseline in check mode (reports drift, only fails
# on schema or structural errors — absolute timings are machine-dependent).
mkdir -p target
cargo run --release --offline --bin adaptraj -- \
    bench --out target/BENCH_ci.json --epochs 1 --scenes 3 --eval-windows 20 \
    --workers 2 || fail=1
cargo run --release --offline -p adaptraj-bench --bin bench_gate -- \
    --baseline results/BENCH_baseline.json --candidate target/BENCH_ci.json \
    --check || fail=1

step "serve smoke (golden bit-exactness, /metrics, 503 backpressure, clean shutdown)"
# Trains a tiny fixed-seed checkpoint, serves it on an ephemeral port, and
# drives it from outside with serve_gate: the golden probe scene's served
# predictions must match the committed results/SERVE_golden.json bit for
# bit (regenerate with `serve_gate --write-golden` when the model
# legitimately changes), /metrics must expose the serve counters, and
# shutdown must be clean. A second instance with --queue-cap 1 proves the
# bounded queue rejects a flood with structured 503s.
cargo run --release --offline --bin adaptraj -- \
    run --backbone pecnet --method vanilla --sources eth_ucy --target l_cas \
    --epochs 1 --workers 2 --seed 7 --ckpt target/serve_ci.atps || fail=1
rm -f target/serve_ci.log
cargo run --release --offline --bin adaptraj -- \
    serve --addr 127.0.0.1:0 --checkpoint target/serve_ci.atps \
    --backbone pecnet --method vanilla --sources eth_ucy \
    --workers 2 > target/serve_ci.log 2>&1 &
serve_pid=$!
serve_addr=""
for _ in $(seq 1 100); do
    serve_addr=$(grep -o 'http://[0-9.]*:[0-9]*' target/serve_ci.log | head -1 || true)
    [ -n "$serve_addr" ] && break
    sleep 0.1
done
if [ -z "$serve_addr" ]; then
    echo "serve never reported a bound address"; cat target/serve_ci.log; fail=1
    kill "$serve_pid" 2>/dev/null || true
else
    cargo run --release --offline -p adaptraj-serve --bin serve_gate -- \
        --addr "${serve_addr#http://}" --golden results/SERVE_golden.json \
        --shutdown || fail=1
fi
wait "$serve_pid" || { echo "serve exited nonzero"; cat target/serve_ci.log; fail=1; }
rm -f target/serve_flood_ci.log
cargo run --release --offline --bin adaptraj -- \
    serve --addr 127.0.0.1:0 --checkpoint target/serve_ci.atps \
    --backbone pecnet --method vanilla --sources eth_ucy \
    --workers 1 --queue-cap 1 --batch-window-us 200000 \
    > target/serve_flood_ci.log 2>&1 &
flood_pid=$!
flood_addr=""
for _ in $(seq 1 100); do
    flood_addr=$(grep -o 'http://[0-9.]*:[0-9]*' target/serve_flood_ci.log | head -1 || true)
    [ -n "$flood_addr" ] && break
    sleep 0.1
done
if [ -z "$flood_addr" ]; then
    echo "flood serve never reported a bound address"; cat target/serve_flood_ci.log; fail=1
    kill "$flood_pid" 2>/dev/null || true
else
    cargo run --release --offline -p adaptraj-serve --bin serve_gate -- \
        --addr "${flood_addr#http://}" --flood 12 --shutdown || fail=1
fi
wait "$flood_pid" || { echo "flood serve exited nonzero"; cat target/serve_flood_ci.log; fail=1; }

step "bench --load smoke + gate (check mode)"
# Tiny closed-loop serving sweep through the in-process server; the gate
# must accept the document against the committed serving baseline (check
# mode: absolute qps/latency are machine-dependent, only schema and
# structural errors fail).
cargo run --release --offline --bin adaptraj -- \
    bench --out target/BENCH_load_ci.json --epochs 1 --scenes 3 \
    --eval-samples 20 --workers 2 \
    --load --load-clients 1,2 --load-requests 8 || fail=1
cargo run --release --offline -p adaptraj-bench --bin bench_gate -- \
    --baseline results/BENCH_4.json --candidate target/BENCH_load_ci.json \
    --check || fail=1
# Load-only gate: the tiny sweep's saturation qps must stay within a
# generous factor of the committed full-sweep baseline. The threshold is
# deliberately loose (the CI sweep stops at 2 clients, well short of
# saturation, and shared runners are noisy) — it exists to catch a
# serving collapse, not a few percent of drift.
cargo run --release --offline -p adaptraj-bench --bin bench_gate -- \
    --baseline results/BENCH_4.json --candidate target/BENCH_load_ci.json \
    --load-only --max-regress-pct 90 || fail=1

step "flight-recorder smoke (run --trace-out + Chrome trace validation)"
# Tiny training run with the execution timeline enabled, then validate
# the emitted Chrome trace document: required keys (ph/ts/pid/tid/name),
# non-negative timestamps/durations, and the executor + trainer span set.
cargo run --release --offline --bin adaptraj -- \
    run --backbone pecnet --method vanilla --sources eth_ucy --target l_cas \
    --epochs 1 --workers 2 --trace-out target/trace_ci.json || fail=1
cargo run --release --offline -p adaptraj-bench --bin trace_check -- \
    target/trace_ci.json \
    --require queue_wait --require job_run --require grad_reduce || fail=1

step "telemetry endpoint smoke (/metrics + /healthz scrape)"
# Binds port 0, scrapes /metrics (Prometheus text incl. p999 quantiles),
# /healthz, and /profile through a real TCP round trip.
cargo test -q --offline --test telemetry serve_ || fail=1

step "health observatory smoke (clean run -> doctor exits zero)"
# Fixed-seed run with the observatory armed: per-domain gradient norms,
# pairwise cosines, and update ratios stream to health JSONL; the doctor
# must find nothing fatal and exit zero.
cargo run --release --offline --bin adaptraj -- \
    run --backbone pecnet --method adaptraj --sources eth_ucy,l_cas,syi \
    --target sdd --epochs 2 --workers 2 --seed 7 \
    --manifest target/health_ci_run.json \
    --health-out target/health_ci.jsonl || fail=1
cargo run --release --offline --bin adaptraj -- \
    doctor --manifest target/health_ci_run.json \
    --health target/health_ci.jsonl || fail=1

step "health observatory smoke (injected NaN -> tripwire -> doctor exits nonzero)"
# Poisons every op of window 3 in epoch 0 (the worker-count-deterministic
# E:W injection form) under halt-and-dump: training must halt, the run
# must exit nonzero with a diagnostic bundle, and the doctor must report
# the NaN incident (with op + phase attribution) and exit nonzero too.
rm -rf target/health_ci_dump
if ADAPTRAJ_HEALTH_INJECT_NAN=0:3 cargo run --release --offline --bin adaptraj -- \
    run --backbone pecnet --method adaptraj --sources eth_ucy,l_cas,syi \
    --target sdd --epochs 2 --workers 2 --seed 7 \
    --manifest target/health_ci_bad.json \
    --health-out target/health_ci_bad.jsonl \
    --health-policy halt-and-dump --health-dump target/health_ci_dump; then
    echo "expected the injected-NaN run to exit nonzero"; fail=1
fi
test -f target/health_ci_dump/bundle.json || { echo "missing bundle.json"; fail=1; }
doctor_out=$(cargo run --release --offline --bin adaptraj -- \
    doctor --manifest target/health_ci_bad.json \
    --health target/health_ci_bad.jsonl 2>&1) && {
    echo "expected doctor to exit nonzero on the injected-NaN run"; fail=1; }
echo "$doctor_out" | grep -q "first unhealthy op: '" || {
    echo "doctor did not attribute the first unhealthy op"; fail=1; }
echo "$doctor_out" | grep -q "(nan)" || {
    echo "doctor did not report the NaN fault"; fail=1; }

echo
if [ "$fail" -ne 0 ]; then
    echo "CI: FAILED"
    exit 1
fi
echo "CI: OK"
