#!/usr/bin/env bash
# Offline CI gate: formatting, lints, build, and the tier-1 test suite.
# Every step works with no network access; steps whose tools are not
# installed (fmt/clippy components) are skipped with a notice rather
# than failing the run.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

step() {
    echo
    echo "=== $* ==="
}

step "cargo fmt --check"
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --all -- --check || fail=1
else
    echo "skipped: rustfmt not installed"
fi

step "cargo clippy -D warnings"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets --offline -- -D warnings || fail=1
else
    echo "skipped: clippy not installed"
fi

step "cargo build --release"
cargo build --release --offline || fail=1

step "cargo test (tier-1)"
cargo test -q --offline || fail=1

step "cargo test --workspace"
cargo test -q --workspace --offline || fail=1

step "determinism suite (workers 1 vs 4 bit-identity)"
cargo test -q --offline --test determinism || fail=1

step "bench smoke + gate (check mode)"
# Tiny fixed-seed bench run on 2 workers, then schema-validate and diff
# against the committed baseline in check mode (reports drift, only fails
# on schema or structural errors — absolute timings are machine-dependent).
mkdir -p target
cargo run --release --offline --bin adaptraj -- \
    bench --out target/BENCH_ci.json --epochs 1 --scenes 3 --eval-windows 20 \
    --workers 2 || fail=1
cargo run --release --offline -p adaptraj-bench --bin bench_gate -- \
    --baseline results/BENCH_baseline.json --candidate target/BENCH_ci.json \
    --check || fail=1

echo
if [ "$fail" -ne 0 ]; then
    echo "CI: FAILED"
    exit 1
fi
echo "CI: OK"
