#!/usr/bin/env bash
# Regenerates every paper table/figure at the given scale (default smoke)
# into results/. Usage: scripts/run_all_tables.sh [smoke|paper]
set -euo pipefail
scale="${1:-smoke}"
cd "$(dirname "$0")/.."
mkdir -p results
bins=(table7_ablation table3_negative_transfer \
      fig3_source_count table6_varied_sources table2_decline table8_inference \
      table5_single_source fig4_sensitivity)
cargo build --release -p adaptraj-bench --bins
for bin in "${bins[@]}"; do
    echo "=== $bin ($scale) ==="
    "target/release/$bin" --scale "$scale" | tee "results/${bin}_${scale}.txt"
done
echo "All outputs in results/"
