#!/usr/bin/env bash
# Perf-regression workflow: run the fixed-seed bench workloads, write
# BENCH_<timestamp>.json at the repo root, and gate it against the most
# recent previous BENCH_*.json (if any) with bench_gate.
#
#   scripts/bench.sh [--max-regress-pct N | --min-improve-pct N] \
#                    [--max-tape-nodes-ratio R] [-- extra bench args]
#
# Examples:
#   scripts/bench.sh                       # default threshold (25%)
#   scripts/bench.sh --max-regress-pct 10
#   scripts/bench.sh --min-improve-pct 25  # optimization PR: every workload
#                                          # must gain >=25% windows_per_sec
#   scripts/bench.sh --min-improve-pct 25 --max-tape-nodes-ratio 0.2
#                                          # ... and tape_nodes must shrink >=5x
#   scripts/bench.sh -- --epochs 8 --scenes 12
#   scripts/bench.sh -- --workers 4        # data-parallel training run
#
# The worker count is recorded in the bench document's `config.workers`
# field, so a baseline and candidate trained with different `--workers`
# values are visibly non-comparable in the gate output.
set -euo pipefail
cd "$(dirname "$0")/.."

max_regress_pct=25
min_improve_pct=""
tape_nodes_args=()
extra_args=()
while [ $# -gt 0 ]; do
    case "$1" in
        --max-regress-pct)
            max_regress_pct="$2"
            shift 2
            ;;
        --min-improve-pct)
            min_improve_pct="$2"
            shift 2
            ;;
        --max-tape-nodes-ratio)
            tape_nodes_args=(--max-tape-nodes-ratio "$2")
            shift 2
            ;;
        --)
            shift
            extra_args=("$@")
            break
            ;;
        *)
            echo "usage: scripts/bench.sh [--max-regress-pct N | --min-improve-pct N] [--max-tape-nodes-ratio R] [-- extra bench args]" >&2
            exit 2
            ;;
    esac
done

# Most recent previous bench document (by mtime) becomes the baseline;
# a fresh clone falls back to the committed results/BENCH_3.json so the
# gate always has something real to diff against.
baseline=$(ls -1t BENCH_*.json 2>/dev/null | head -n 1 || true)
if [ -z "$baseline" ] && [ -f results/BENCH_3.json ]; then
    baseline=results/BENCH_3.json
fi

out="BENCH_$(date +%Y%m%d_%H%M%S).json"
echo "=== bench -> $out ==="
cargo run --release --offline --bin adaptraj -- bench --out "$out" "${extra_args[@]}"

if [ -z "$baseline" ]; then
    echo
    echo "no previous BENCH_*.json found — $out is the new baseline, nothing to gate"
    exit 0
fi

echo
if [ -n "$min_improve_pct" ]; then
    echo "=== bench_gate: $baseline -> $out (require +${min_improve_pct}%) ==="
    cargo run --release --offline -p adaptraj-bench --bin bench_gate -- \
        --baseline "$baseline" --candidate "$out" --min-improve-pct "$min_improve_pct" \
        "${tape_nodes_args[@]}"
else
    echo "=== bench_gate: $baseline -> $out (threshold ${max_regress_pct}%) ==="
    cargo run --release --offline -p adaptraj-bench --bin bench_gate -- \
        --baseline "$baseline" --candidate "$out" --max-regress-pct "$max_regress_pct" \
        "${tape_nodes_args[@]}"
fi
