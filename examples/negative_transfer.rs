//! Demonstrates the paper's core motivation (Tab. III vs Fig. 3): pooling
//! more source domains *hurts* a single-source method (negative transfer)
//! but *helps* AdapTraj.
//!
//! ```sh
//! cargo run --release --example negative_transfer
//! ```

use adaptraj::data::dataset::{synthesize_all, SynthesisConfig};
use adaptraj::data::domain::DomainId;
use adaptraj::eval::{run_cell, BackboneKind, CellSpec, MethodKind, RunnerConfig, TextTable};
use adaptraj::models::TrainerConfig;

fn main() {
    let datasets = synthesize_all(&SynthesisConfig::default());
    let cfg = RunnerConfig {
        trainer: TrainerConfig {
            epochs: 10,
            max_train_windows: 200,
            ..TrainerConfig::default()
        },
        samples_k: 3,
        eval_cap: 150,
        ..RunnerConfig::default()
    };

    let source_sets: [Vec<DomainId>; 3] = [
        vec![DomainId::EthUcy],
        vec![DomainId::EthUcy, DomainId::LCas],
        vec![DomainId::EthUcy, DomainId::LCas, DomainId::Syi],
    ];

    let mut table = TextTable::new(&["#Sources", "CausalMotion (ADE/FDE)", "AdapTraj (ADE/FDE)"]);
    for sources in &source_sets {
        let mut row = vec![sources.len().to_string()];
        for method in [MethodKind::CausalMotion, MethodKind::AdapTraj] {
            let spec = CellSpec {
                backbone: BackboneKind::PecNet,
                method,
                sources: sources.clone(),
                target: DomainId::Sdd,
            };
            eprintln!("[run] {}", spec.label());
            let res = run_cell(&spec, &datasets, &cfg);
            row.push(res.eval.to_string());
        }
        table.push_row(row);
    }
    println!("Unseen target: SDD\n");
    println!("{table}");
    println!(
        "Reading: down the CausalMotion column errors grow (negative transfer);\n\
         AdapTraj absorbs the added domains instead of averaging over them."
    );
}
