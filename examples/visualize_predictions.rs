//! Train, checkpoint, reload, and visualize: exercises model
//! serialization, CSV dataset export, and SVG rendering.
//!
//! ```sh
//! cargo run --release --example visualize_predictions
//! ```
//!
//! Outputs land in `./viz_out/`: a dataset CSV, a model checkpoint, and
//! one SVG per visualized window (black = observed, green = ground-truth
//! future, orange dashes = sampled predictions, blue = neighbors).

use adaptraj::data::dataset::{synthesize_domain, SynthesisConfig};
use adaptraj::data::domain::DomainId;
use adaptraj::data::io::write_csv;
use adaptraj::eval::viz::{render_window, VizOptions};
use adaptraj::models::{BackboneConfig, PecNet, Predictor, TrainerConfig, Vanilla};
use adaptraj::tensor::serialize::{load_params_from_file, save_params_to_file};
use adaptraj::tensor::Rng;
use std::fs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = std::path::Path::new("viz_out");
    fs::create_dir_all(out)?;

    // 1. Data: one domain, exported as CSV for external inspection.
    let ds = synthesize_domain(DomainId::EthUcy, &SynthesisConfig::default());
    let mut csv = fs::File::create(out.join("ethucy_train.csv"))?;
    write_csv(&ds.train[..ds.train.len().min(50)], &mut csv)?;
    println!(
        "wrote {} (first 50 windows)",
        out.join("ethucy_train.csv").display()
    );

    // 2. Train a small model and checkpoint it.
    let cfg = TrainerConfig {
        epochs: 12,
        max_train_windows: 200,
        ..TrainerConfig::default()
    };
    let mut model = Vanilla::new(cfg.clone(), |s, r| {
        PecNet::new(s, r, BackboneConfig::default())
    });
    println!("training {} ...", model.name());
    model.fit(&ds.train);
    let ckpt = out.join("pecnet.atps");
    save_params_to_file(model.store(), &ckpt)?;
    println!("checkpoint: {}", ckpt.display());

    // 3. Reload into a freshly constructed (differently initialized)
    //    model and verify the predictions are the trained ones.
    let mut reloaded = Vanilla::new(TrainerConfig { seed: 999, ..cfg }, |s, r| {
        PecNet::new(s, r, BackboneConfig::default())
    });
    load_params_from_file(reloaded.store_mut(), &ckpt)?;

    // 4. Render a few test windows with 3 sampled futures each.
    let mut rng = Rng::seed_from(7);
    for (i, w) in ds
        .test
        .iter()
        .filter(|w| !w.neighbors.is_empty())
        .take(4)
        .enumerate()
    {
        let samples = reloaded.predict_k(w, 3, &mut rng);
        let svg = render_window(w, &samples, &VizOptions::default());
        let path = out.join(format!("window_{i}.svg"));
        fs::write(&path, svg)?;
        println!("rendered {}", path.display());
    }
    println!("done — open viz_out/*.svg in a browser");
    Ok(())
}
