//! AdapTraj is plug-and-play: the same framework configuration wraps two
//! structurally different backbones — PECNet (endpoint CVAE) and LBEBM
//! (latent energy-based model) — through the shared `Backbone` trait.
//!
//! ```sh
//! cargo run --release --example plug_and_play
//! ```

use adaptraj::core::{AdapTraj, AdapTrajConfig};
use adaptraj::data::dataset::{synthesize_domain, SynthesisConfig};
use adaptraj::data::domain::DomainId;
use adaptraj::eval::metrics::{best_of_k, EvalAccumulator};
use adaptraj::models::{BackboneConfig, Lbebm, PecNet, Predictor, TrainerConfig};
use adaptraj::tensor::Rng;

fn evaluate(model: &dyn Predictor, test: &[adaptraj::data::TrajWindow]) -> String {
    let mut rng = Rng::seed_from(7);
    let mut acc = EvalAccumulator::new();
    for w in test.iter().take(150) {
        let samples = model.predict_k(w, 3, &mut rng);
        let (a, f) = best_of_k(&samples, &w.fut);
        acc.push(a, f);
    }
    acc.result().to_string()
}

fn main() {
    let synth = SynthesisConfig::default();
    let sources = [DomainId::EthUcy, DomainId::Syi];
    let target = synthesize_domain(DomainId::Sdd, &synth);
    let mut train = Vec::new();
    for &s in &sources {
        train.extend(synthesize_domain(s, &synth).train);
    }

    let cfg = AdapTrajConfig {
        trainer: TrainerConfig {
            epochs: 8,
            max_train_windows: 150,
            ..TrainerConfig::default()
        },
        e_start: 6,
        e_end: 7,
        ..AdapTrajConfig::default()
    };

    // Identical framework config, two different backbones — the only
    // difference is the constructor closure.
    let mut pecnet = AdapTraj::new(cfg.clone(), &sources, |s, r, extra| {
        PecNet::new(s, r, BackboneConfig::default().with_extra(extra))
    });
    let mut lbebm = AdapTraj::new(cfg, &sources, |s, r, extra| {
        Lbebm::new(s, r, BackboneConfig::default().with_extra(extra))
    });

    for model in [&mut pecnet as &mut dyn Predictor, &mut lbebm] {
        let t0 = std::time::Instant::now();
        model.fit(&train);
        println!(
            "{:16} trained in {:5.1}s -> unseen SDD ADE/FDE {}",
            model.name(),
            t0.elapsed().as_secs_f64(),
            evaluate(model, &target.test)
        );
    }
    println!("\nSame framework object model, two generative families — the");
    println!("encode/generate split in the Backbone trait is the plug point.");
}
