//! Crowd-simulator tour: sample a scene from each domain's calibrated
//! distribution, render a coarse ASCII view, and print the Table I-style
//! statistics that characterize the distribution shift between domains.
//!
//! ```sh
//! cargo run --release --example crowd_sim
//! ```

use adaptraj::data::dataset::{synthesize_domain, SynthesisConfig};
use adaptraj::data::domain::DomainId;
use adaptraj::data::stats::table_one;
use adaptraj::sim::build_world;

/// Renders active agent positions into a character grid.
fn ascii_scene(world: &adaptraj::sim::World, extent: f32) -> String {
    const W: usize = 60;
    const H: usize = 24;
    let mut grid = vec![vec![' '; W]; H];
    for agent in world.agents.iter().filter(|a| a.active) {
        let x = ((agent.pos.x + extent) / (2.0 * extent) * (W as f32 - 1.0)).round();
        let y = ((agent.pos.y + extent) / (2.0 * extent) * (H as f32 - 1.0)).round();
        if x >= 0.0 && y >= 0.0 && (x as usize) < W && (y as usize) < H {
            let speed = agent.vel.norm();
            grid[y as usize][x as usize] = if speed < 0.2 {
                'o' // stationary
            } else if speed < 1.5 {
                '*' // walking
            } else {
                '#' // fast
            };
        }
    }
    let mut out = String::new();
    out.push_str(&format!("+{}+\n", "-".repeat(W)));
    for row in grid.iter().rev() {
        out.push('|');
        out.extend(row.iter());
        out.push_str("|\n");
    }
    out.push_str(&format!("+{}+\n", "-".repeat(W)));
    out
}

fn main() {
    for domain in DomainId::ALL {
        let scenario = domain.scenario();
        let params = domain.force_params();
        let mut world = build_world(&scenario, &params, 0.1, 2024);
        // Let the scene evolve for 8 seconds before the snapshot.
        for _ in 0..80 {
            world.step();
        }
        println!(
            "--- {domain} ({} agents spawned, {} still active; o=standing *=walking #=fast) ---",
            world.agents.len(),
            world.active_count()
        );
        println!("{}", ascii_scene(&world, scenario.extent));
    }

    println!("Table I-style statistics from full synthesis (smoke size):");
    let synth = SynthesisConfig::smoke();
    for domain in DomainId::ALL {
        let ds = synthesize_domain(domain, &synth);
        let windows: Vec<_> = ds.all_windows().cloned().collect();
        let s = table_one(&windows);
        println!(
            "  {:8} seq={:5}  num={}  v(x)={}  v(y)={}",
            domain.name(),
            s.sequences,
            s.num,
            s.vx,
            s.vy
        );
    }
    println!("\nNote the shifts the paper builds on: SYI's fast vertical flow and");
    println!("density vs L-CAS's slow indoor corridor — these are what a");
    println!("domain-generalizing predictor must bridge.");
}
