//! Quickstart: train AdapTraj on two source domains and predict on a
//! domain it has never seen.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use adaptraj::core::{AdapTraj, AdapTrajConfig};
use adaptraj::data::dataset::{synthesize_domain, SynthesisConfig};
use adaptraj::data::domain::DomainId;
use adaptraj::eval::metrics::{best_of_k, EvalAccumulator};
use adaptraj::models::{BackboneConfig, PecNet, Predictor, TrainerConfig};
use adaptraj::tensor::Rng;

fn main() {
    // 1. Synthesize two source domains and one unseen target domain.
    let synth = SynthesisConfig::default();
    let sources = [DomainId::EthUcy, DomainId::LCas];
    let target = DomainId::Sdd;
    println!(
        "synthesizing {} + {} (sources) and {} (unseen target) ...",
        sources[0], sources[1], target
    );
    let mut train = Vec::new();
    for &s in &sources {
        train.extend(synthesize_domain(s, &synth).train);
    }
    let target_ds = synthesize_domain(target, &synth);

    // 2. Wrap a PECNet backbone with the AdapTraj framework. The closure
    //    receives the extra conditioning width ([H^i | H^s]) the framework
    //    needs the backbone to accept.
    let cfg = AdapTrajConfig {
        trainer: TrainerConfig {
            epochs: 10,
            max_train_windows: 200,
            ..TrainerConfig::default()
        },
        e_start: 8,
        e_end: 9,
        ..AdapTrajConfig::default()
    };
    let mut model = AdapTraj::new(cfg, &sources, |store, rng, extra_dim| {
        PecNet::new(store, rng, BackboneConfig::default().with_extra(extra_dim))
    });
    println!("training {} on {} windows ...", model.name(), train.len());
    let report = model.fit(&train);
    println!(
        "train loss: {:.3} -> {:.3} over {} epochs",
        report.epoch_losses[0],
        report.final_loss().unwrap(),
        report.epoch_losses.len()
    );

    // 3. Evaluate best-of-3 ADE/FDE on the unseen domain's test split.
    let mut rng = Rng::seed_from(42);
    let mut acc = EvalAccumulator::new();
    for w in target_ds.test.iter().take(200) {
        let samples = model.predict_k(w, 3, &mut rng);
        let (a, f) = best_of_k(&samples, &w.fut);
        acc.push(a, f);
    }
    println!(
        "unseen {}: ADE/FDE = {} over {} windows",
        target,
        acc.result(),
        acc.count()
    );

    // 4. Inspect one prediction.
    let w = &target_ds.test[0];
    let pred = model.predict(w, &mut rng);
    println!("\nsample prediction (normalized frame, last obs at origin):");
    println!("  t   predicted          ground truth");
    for (t, (p, g)) in pred.iter().zip(&w.fut).enumerate() {
        println!(
            "  {t:2}  ({:6.2}, {:6.2})   ({:6.2}, {:6.2})",
            p[0], p[1], g[0], g[1]
        );
    }
}
